"""Strip-mining of pointer traversal loops (paper section 4.3.3).

Given a loop of the shape::

    p = particles;
    while p <> NULL
    { <work using p>;
      p = p->next;
    }

whose iterations are independent apart from the traversal itself, the
transformation produces::

    while p <> NULL
    { for i = 0 to PEs-1 in parallel
        _BHL1_iteration(i, p, <free vars>);
      for i = 0 to PEs-1          /* FOR1 */
        p = p->next;
    }

    procedure _BHL1_iteration(i, p, <free vars>)
    { for k = 1 to i              /* FOR2 */
        p = p->next;
      if p <> NULL
      then <work using p>;
    }

Each parallel step processes ``PEs`` consecutive nodes — PE 0 processes the
node at ``p``, PE 1 the node at ``p->next``, and so on.  The inner ``FOR1`` /
``FOR2`` loops may walk past the end of the list; this is safe because ADDS
structures are *speculatively traversable* (section 3.2), which is why the
transformed code contains no extra NULL checks inside the skip loops.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldAssign,
    For,
    FunctionDecl,
    If,
    IntLit,
    Name,
    NullLit,
    ParallelFor,
    Param,
    Program,
    Stmt,
    VarDecl,
    While,
    iter_statements,
)
from repro.transform.dependence import DependenceTest, LoopClassification, classify_loop, find_while_loops


class TransformError(Exception):
    """Raised when a requested transformation cannot be applied."""


@dataclass
class StripMineResult:
    """The outcome of strip-mining one loop."""

    program: Program
    function_name: str
    iteration_procedure: str
    traversal_var: str
    traversal_field: str
    pes_param: str
    dependence: DependenceTest | None = None
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"strip-mined loop in {self.function_name}:",
            f"  traversal: {self.traversal_var} = "
            f"{self.traversal_var}->{self.traversal_field}",
            f"  iteration procedure: {self.iteration_procedure}",
            f"  processors parameter: {self.pes_param}",
        ]
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def _find_traversal_update(body: Block) -> tuple[int, str, str] | None:
    """Locate the last top-level ``p = p->f`` statement in ``body``.

    Returns (index, variable, field) or None.
    """
    for idx in range(len(body.statements) - 1, -1, -1):
        stmt = body.statements[idx]
        if (
            isinstance(stmt, Assign)
            and isinstance(stmt.value, FieldAccess)
            and isinstance(stmt.value.base, Name)
            and stmt.value.base.ident == stmt.target
        ):
            return idx, stmt.target, stmt.value.field
    return None


def _is_null_check(cond: Expr, var: str) -> bool:
    """``var <> NULL`` or ``NULL <> var`` — the only exit test the skip loops
    of the transformed code can reproduce."""
    if not (isinstance(cond, BinOp) and cond.op == "<>"):
        return False
    left, right = cond.left, cond.right
    return (
        isinstance(left, Name) and left.ident == var and isinstance(right, NullLit)
    ) or (
        isinstance(right, Name) and right.ident == var and isinstance(left, NullLit)
    )


def _is_induction_update(stmt: Stmt) -> bool:
    """``p = p->f`` — the pointer-chasing update form."""
    return (
        isinstance(stmt, Assign)
        and isinstance(stmt.value, FieldAccess)
        and isinstance(stmt.value.base, Name)
        and stmt.value.base.ident == stmt.target
    )


def _check_traversal_shape(loop: While, update_idx: int, traversal_var: str) -> None:
    """Structural preconditions shared by strip-mining and pipelining.

    Both transforms assume the canonical traversal shape the paper works
    with: the chain advances exactly once per iteration, as the *last* thing
    the iteration does, and the loop exits exactly at the end of the chain.
    Anything else silently changes meaning — work placed after the update
    belongs to the *next* node, a second top-level update advances a pointer
    the skip loops know nothing about, and a non-NULL exit test cannot be
    evaluated by the processor-local skip loops.
    """
    if update_idx != len(loop.body.statements) - 1:
        raise TransformError(
            "the traversal update must be the last statement of the loop "
            "body; statements after it operate on the next node"
        )
    top_updates = [
        i for i, s in enumerate(loop.body.statements) if _is_induction_update(s)
    ]
    if top_updates != [update_idx]:
        raise TransformError(
            "loop body must contain exactly one top-level pointer-induction "
            "update; additional updates advance pointers the transformed "
            "code cannot track"
        )
    update = loop.body.statements[update_idx]
    for stmt in iter_statements(loop.body):
        if isinstance(stmt, Assign) and stmt.target == traversal_var and stmt is not update:
            raise TransformError(
                f"traversal variable {traversal_var!r} is reassigned inside "
                f"the loop body"
            )
    if not _is_null_check(loop.cond, traversal_var):
        raise TransformError(
            f"loop condition must be exactly {traversal_var!r} <> NULL: the "
            f"transformed code tests only for end-of-chain"
        )


def _free_names(statements: list[Stmt], bound: set[str], program: Program) -> list[str]:
    """Names referenced by ``statements`` that are not locally bound.

    Function names and names declared by nested VarDecls are excluded.
    """
    function_names = {f.name for f in program.functions}
    declared = set(bound)
    for stmt in statements:
        for inner in _iter_with_self(stmt):
            if isinstance(inner, VarDecl):
                declared.add(inner.name)
            if isinstance(inner, (For, ParallelFor)):
                declared.add(inner.var)
    used: list[str] = []
    for stmt in statements:
        for node in stmt.walk():
            if isinstance(node, Name):
                if node.ident in declared or node.ident in function_names:
                    continue
                if node.ident not in used:
                    used.append(node.ident)
            elif isinstance(node, Assign):
                if node.target not in declared and node.target not in used:
                    used.append(node.target)
    return used


def _iter_with_self(stmt: Stmt):
    yield stmt
    for child in stmt.walk():
        yield child


def _fresh_name(base: str, taken: set[str]) -> str:
    name = base
    while name in taken:
        name = name + "_"
    return name


def strip_mine_loop(
    program: Program,
    function_name: str,
    loop_index: int = 0,
    pes_param: str = "PEs",
    label: str | None = None,
    check_dependences: bool = True,
    use_adds: bool = True,
) -> StripMineResult:
    """Strip-mine the ``loop_index``-th while loop of ``function_name``.

    The transformation is applied to a **copy** of ``program``; the original
    AST is left untouched.  With ``check_dependences=True`` (the default) the
    loop is first classified with the path-matrix dependence test and the
    transformation refuses to proceed unless the loop is a
    ``DOALL_AFTER_TRAVERSAL``.
    """
    original_loops = find_while_loops(program, function_name)
    if loop_index >= len(original_loops):
        raise TransformError(
            f"{function_name} has {len(original_loops)} while loop(s); "
            f"index {loop_index} out of range"
        )

    dependence: DependenceTest | None = None
    if check_dependences:
        dependence = classify_loop(
            program, function_name, original_loops[loop_index], use_adds=use_adds
        )
        if dependence.classification is not LoopClassification.DOALL_AFTER_TRAVERSAL:
            raise TransformError(
                "loop is not parallelizable: " + "; ".join(dependence.reasons)
            )

    new_program = copy.deepcopy(program)
    func = new_program.function_named(function_name)
    assert func is not None
    loops = [s for s in iter_statements(func.body) if isinstance(s, While)]
    loop = loops[loop_index]

    found = _find_traversal_update(loop.body)
    if found is None:
        raise TransformError("loop body has no top-level traversal update p = p->f")
    update_idx, traversal_var, traversal_field = found
    _check_traversal_shape(loop, update_idx, traversal_var)

    work = [s for i, s in enumerate(loop.body.statements) if i != update_idx]
    if not work:
        raise TransformError("loop body consists only of the traversal update")

    taken_names = {p.name for p in func.params} | {
        s.name for s in iter_statements(func.body) if isinstance(s, VarDecl)
    } | {traversal_var}
    i_var = _fresh_name("i", taken_names)
    k_var = _fresh_name("k", taken_names | {i_var})

    # free variables of the work become parameters of the iteration procedure
    frees = _free_names(work, bound={traversal_var, i_var, k_var}, program=new_program)

    label = label or function_name
    proc_name = _fresh_name(f"_{label}_iteration", {f.name for f in new_program.functions})

    # --- the iteration procedure -------------------------------------------
    skip_loop = For(
        var=k_var,
        lo=IntLit(1),
        hi=Name(i_var),
        body=Block(
            statements=[
                Assign(
                    target=traversal_var,
                    value=FieldAccess(base=Name(traversal_var), field=traversal_field),
                )
            ]
        ),
    )
    guarded_work = If(
        cond=BinOp(op="<>", left=Name(traversal_var), right=NullLit()),
        then_body=Block(statements=copy.deepcopy(work)),
    )
    iteration_proc = FunctionDecl(
        name=proc_name,
        params=[Param(name=i_var), Param(name=traversal_var)]
        + [Param(name=v) for v in frees],
        body=Block(statements=[skip_loop, guarded_work]),
        is_procedure=True,
    )
    new_program.functions.append(iteration_proc)

    # --- the transformed loop body --------------------------------------------
    pes_expr = Name(pes_param)
    parallel = ParallelFor(
        var=i_var,
        lo=IntLit(0),
        hi=BinOp(op="-", left=pes_expr, right=IntLit(1)),
        body=Block(
            statements=[
                ExprStmt(
                    expr=Call(
                        func=proc_name,
                        args=[Name(i_var), Name(traversal_var)] + [Name(v) for v in frees],
                    )
                )
            ]
        ),
        label="parallel-iterations",
    )
    skip_ahead = For(
        var=i_var,
        lo=IntLit(0),
        hi=BinOp(op="-", left=copy.deepcopy(pes_expr), right=IntLit(1)),
        body=Block(
            statements=[
                Assign(
                    target=traversal_var,
                    value=FieldAccess(base=Name(traversal_var), field=traversal_field),
                )
            ]
        ),
        label="FOR1",
    )
    loop.body = Block(statements=[parallel, skip_ahead], line=loop.body.line)

    # make sure the processors count is available in the enclosing function
    notes: list[str] = []
    if pes_param not in {p.name for p in func.params} and not any(
        isinstance(s, VarDecl) and s.name == pes_param for s in iter_statements(func.body)
    ):
        func.params.append(Param(name=pes_param))
        notes.append(
            f"added parameter {pes_param!r} to {function_name} (number of processors)"
        )

    notes.append(
        "inner FOR1/FOR2 loops rely on speculative traversability to walk past NULL"
    )
    return StripMineResult(
        program=new_program,
        function_name=function_name,
        iteration_procedure=proc_name,
        traversal_var=traversal_var,
        traversal_field=traversal_field,
        pes_param=pes_param,
        dependence=dependence,
        notes=notes,
    )


def strip_mine_function(
    program: Program,
    function_name: str,
    pes_param: str = "PEs",
    check_dependences: bool = True,
) -> StripMineResult:
    """Strip-mine every parallelizable while loop of ``function_name``.

    Loops are transformed in order; loops that fail the dependence test are
    left untouched (their reasons are recorded in the result's notes).
    Returns the result of the final successful transformation, whose program
    contains all accumulated rewrites.
    """
    current = program
    last_result: StripMineResult | None = None
    skipped: list[str] = []
    loops = find_while_loops(program, function_name)
    for index in range(len(loops)):
        try:
            result = strip_mine_loop(
                current,
                function_name,
                loop_index=index,
                pes_param=pes_param,
                label=f"{function_name}_L{index + 1}",
                check_dependences=check_dependences,
            )
        except TransformError as exc:
            skipped.append(f"loop #{index + 1}: {exc}")
            continue
        current = result.program
        last_result = result
    if last_result is None:
        raise TransformError(
            f"no loop of {function_name} could be strip-mined: " + "; ".join(skipped)
        )
    last_result.notes.extend(skipped)
    return last_result
