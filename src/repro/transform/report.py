"""Human-readable reports about analysis-driven transformations.

:class:`TransformationReport` bundles the before/after program text, the
dependence evidence and the notes of a transformation into something a user
(or an example script) can print.  Used by ``examples/`` and by the
benchmark harness when ``--verbose`` output is requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import Program
from repro.lang.pretty import unparse
from repro.transform.dependence import DependenceTest


@dataclass
class TransformationReport:
    """Everything worth showing about one applied transformation."""

    name: str
    function_name: str
    original: Program
    transformed: Program
    dependence: DependenceTest | None = None
    notes: list[str] = field(default_factory=list)

    def original_source(self) -> str:
        func = self.original.function_named(self.function_name)
        return unparse(func) if func is not None else unparse(self.original)

    def transformed_source(self) -> str:
        func = self.transformed.function_named(self.function_name)
        text = unparse(func) if func is not None else unparse(self.transformed)
        # include any helper procedures the transformation introduced
        original_names = {f.name for f in self.original.functions}
        for f in self.transformed.functions:
            if f.name not in original_names:
                text += "\n\n" + unparse(f)
        return text

    def render(self, show_dependence: bool = True) -> str:
        lines = [f"=== {self.name} applied to {self.function_name} ===", ""]
        if show_dependence and self.dependence is not None:
            lines.append("-- dependence evidence --")
            lines.append(self.dependence.describe())
            lines.append("")
        lines.append("-- original --")
        lines.append(self.original_source())
        lines.append("")
        lines.append("-- transformed --")
        lines.append(self.transformed_source())
        if self.notes:
            lines.append("")
            lines.append("-- notes --")
            lines.extend(f"* {n}" for n in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
