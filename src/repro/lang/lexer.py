"""Hand-written lexer for the toy pointer language.

The surface syntax follows the paper's examples closely, e.g.::

    type OneWayList [X]
    { int data;
      OneWayList *next is uniquely forward along X;
    };

    function scale (head, c)
    { var p;
      p = head;
      while p <> NULL
      { p->coef = p->coef * c;
        p = p->next;
      }
      return head;
    }
"""

from __future__ import annotations

from repro.lang.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenKind


class Lexer:
    """Convert source text into a list of :class:`Token`."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: list[Token] = []

    # -- low-level helpers -------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx < len(self.source):
            return self.source[idx]
        return "\0"

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.col = 1
        else:
            self.col += 1
        return ch

    def _at_end(self) -> bool:
        return self.pos >= len(self.source)

    def _add(self, kind: TokenKind, text: str, line: int, col: int) -> None:
        self.tokens.append(Token(kind, text, line, col))

    # -- main loop ---------------------------------------------------------
    def tokenize(self) -> list[Token]:
        while not self._at_end():
            self._skip_whitespace_and_comments()
            if self._at_end():
                break
            line, col = self.line, self.col
            ch = self._peek()
            if ch.isalpha() or ch == "_":
                self._lex_ident(line, col)
            elif ch.isdigit():
                self._lex_number(line, col)
            elif ch == '"':
                self._lex_string(line, col)
            else:
                self._lex_operator(line, col)
        self._add(TokenKind.EOF, "", self.line, self.col)
        return self.tokens

    def _skip_whitespace_and_comments(self) -> None:
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance()
                self._advance()
                while not self._at_end() and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self._at_end():
                    raise LexError("unterminated block comment", start_line)
                self._advance()
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "#":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_ident(self, line: int, col: int) -> None:
        start = self.pos
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start:self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        self._add(kind, text, line, col)

    def _lex_number(self, line: int, col: int) -> None:
        start = self.pos
        is_float = False
        while not self._at_end() and self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while not self._at_end() and self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (self._peek(1).isdigit() or
                                     (self._peek(1) in "+-" and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while not self._at_end() and self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        self._add(kind, text, line, col)

    def _lex_string(self, line: int, col: int) -> None:
        self._advance()  # opening quote
        chars: list[str] = []
        while not self._at_end() and self._peek() != '"':
            ch = self._advance()
            if ch == "\\" and not self._at_end():
                esc = self._advance()
                chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
            else:
                chars.append(ch)
        if self._at_end():
            raise LexError("unterminated string literal", line, col)
        self._advance()  # closing quote
        self._add(TokenKind.STRING_LIT, "".join(chars), line, col)

    _TWO_CHAR = {
        "->": TokenKind.ARROW,
        "==": TokenKind.EQ,
        "<>": TokenKind.NEQ,
        "!=": TokenKind.NEQ,
        "<=": TokenKind.LE,
        ">=": TokenKind.GE,
        "||": TokenKind.INDEP,
        "&&": TokenKind.KW_AND,
    }

    _ONE_CHAR = {
        "{": TokenKind.LBRACE,
        "}": TokenKind.RBRACE,
        "(": TokenKind.LPAREN,
        ")": TokenKind.RPAREN,
        "[": TokenKind.LBRACKET,
        "]": TokenKind.RBRACKET,
        ";": TokenKind.SEMI,
        ",": TokenKind.COMMA,
        "*": TokenKind.STAR,
        ".": TokenKind.DOT,
        "=": TokenKind.ASSIGN,
        "+": TokenKind.PLUS,
        "-": TokenKind.MINUS,
        "/": TokenKind.SLASH,
        "%": TokenKind.PERCENT,
        "<": TokenKind.LT,
        ">": TokenKind.GT,
        "!": TokenKind.KW_NOT,
    }

    def _lex_operator(self, line: int, col: int) -> None:
        two = self._peek() + self._peek(1)
        if two in self._TWO_CHAR:
            self._advance()
            self._advance()
            self._add(self._TWO_CHAR[two], two, line, col)
            return
        one = self._peek()
        if one in self._ONE_CHAR:
            self._advance()
            self._add(self._ONE_CHAR[one], one, line, col)
            return
        raise LexError(f"unexpected character {one!r}", line, col)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` and return the token list (ending with EOF)."""
    return Lexer(source).tokenize()
