"""Token kinds and the token record for the toy language lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Every terminal the grammar distinguishes."""

    # literals and identifiers
    IDENT = auto()
    INT_LIT = auto()
    FLOAT_LIT = auto()
    STRING_LIT = auto()

    # keywords
    KW_TYPE = auto()
    KW_FUNCTION = auto()
    KW_PROCEDURE = auto()
    KW_VAR = auto()
    KW_IF = auto()
    KW_THEN = auto()
    KW_ELSE = auto()
    KW_WHILE = auto()
    KW_FOR = auto()
    KW_TO = auto()
    KW_STEP = auto()
    KW_IN = auto()
    KW_PARALLEL = auto()
    KW_RETURN = auto()
    KW_NULL = auto()
    KW_NEW = auto()
    KW_TRUE = auto()
    KW_FALSE = auto()
    KW_INT = auto()
    KW_FLOAT = auto()
    KW_BOOL = auto()
    KW_VOID = auto()
    KW_STRING = auto()
    KW_AND = auto()
    KW_OR = auto()
    KW_NOT = auto()
    # ADDS keywords (section 3.1 of the paper)
    KW_IS = auto()
    KW_UNIQUELY = auto()
    KW_FORWARD = auto()
    KW_BACKWARD = auto()
    KW_UNKNOWN = auto()
    KW_ALONG = auto()
    KW_WHERE = auto()

    # punctuation / operators
    LBRACE = auto()
    RBRACE = auto()
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    SEMI = auto()
    COMMA = auto()
    STAR = auto()
    ARROW = auto()          # ->
    DOT = auto()
    ASSIGN = auto()         # =
    PLUS = auto()
    MINUS = auto()
    SLASH = auto()
    PERCENT = auto()
    EQ = auto()             # ==
    NEQ = auto()            # <> or !=
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    INDEP = auto()          # || : dimension independence in ADDS where-clauses

    EOF = auto()


KEYWORDS: dict[str, TokenKind] = {
    "type": TokenKind.KW_TYPE,
    "function": TokenKind.KW_FUNCTION,
    "procedure": TokenKind.KW_PROCEDURE,
    "var": TokenKind.KW_VAR,
    "if": TokenKind.KW_IF,
    "then": TokenKind.KW_THEN,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "to": TokenKind.KW_TO,
    "step": TokenKind.KW_STEP,
    "in": TokenKind.KW_IN,
    "parallel": TokenKind.KW_PARALLEL,
    "return": TokenKind.KW_RETURN,
    "NULL": TokenKind.KW_NULL,
    "null": TokenKind.KW_NULL,
    "new": TokenKind.KW_NEW,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "int": TokenKind.KW_INT,
    "float": TokenKind.KW_FLOAT,
    "bool": TokenKind.KW_BOOL,
    "boolean": TokenKind.KW_BOOL,
    "void": TokenKind.KW_VOID,
    "string": TokenKind.KW_STRING,
    "and": TokenKind.KW_AND,
    "or": TokenKind.KW_OR,
    "not": TokenKind.KW_NOT,
    "is": TokenKind.KW_IS,
    "uniquely": TokenKind.KW_UNIQUELY,
    "forward": TokenKind.KW_FORWARD,
    "backward": TokenKind.KW_BACKWARD,
    "unknown": TokenKind.KW_UNKNOWN,
    "along": TokenKind.KW_ALONG,
    "where": TokenKind.KW_WHERE,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"

    def is_keyword(self) -> bool:
        return self.kind.name.startswith("KW_")
