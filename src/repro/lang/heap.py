"""An explicit heap model for the toy-language interpreter.

The heap is a map from integer references to :class:`HeapCell` records.  The
model exists for two reasons:

1. the interpreter needs somewhere to store dynamically allocated records,
2. the ADDS *runtime checker* (:mod:`repro.adds.runtime_check`) inspects a
   concrete heap to decide whether a structure actually satisfies its
   declared shape (acyclicity per dimension, uniqueness of inbound edges,
   dimension independence) — the dynamic analogue of abstraction validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.lang.errors import RuntimeLangError


#: The NULL reference.  Reference 0 is reserved and never allocated.
NULL_REF = 0


@dataclass
class HeapCell:
    """One dynamically allocated record."""

    ref: int
    type_name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def get(self, name: str) -> Any:
        if name not in self.fields:
            raise RuntimeLangError(
                f"record of type {self.type_name!r} has no field {name!r}"
            )
        return self.fields[name]

    def set(self, name: str, value: Any) -> None:
        if name not in self.fields:
            raise RuntimeLangError(
                f"record of type {self.type_name!r} has no field {name!r}"
            )
        self.fields[name] = value


class Heap:
    """A growable store of :class:`HeapCell` addressed by integer references."""

    def __init__(self):
        self._cells: dict[int, HeapCell] = {}
        self._next_ref = 1
        self.allocation_count = 0

    def allocate(self, type_name: str, field_names: dict[str, Any]) -> int:
        """Allocate a record of ``type_name`` with the given initial fields."""
        ref = self._next_ref
        self._next_ref += 1
        self._cells[ref] = HeapCell(ref=ref, type_name=type_name, fields=dict(field_names))
        self.allocation_count += 1
        return ref

    def cell(self, ref: int) -> HeapCell:
        if ref == NULL_REF:
            raise RuntimeLangError("NULL pointer dereference")
        cell = self._cells.get(ref)
        if cell is None:
            raise RuntimeLangError(f"dangling reference {ref}")
        return cell

    def is_valid(self, ref: int) -> bool:
        return ref != NULL_REF and ref in self._cells

    def load(self, ref: int, field_name: str) -> Any:
        return self.cell(ref).get(field_name)

    def store(self, ref: int, field_name: str, value: Any) -> None:
        self.cell(ref).set(field_name, value)

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[HeapCell]:
        return iter(self._cells.values())

    def cells_of_type(self, type_name: str) -> list[HeapCell]:
        return [c for c in self._cells.values() if c.type_name == type_name]

    # -- reachability utilities (used by the ADDS runtime checker) ----------
    def reachable_from(self, ref: int, fields: set[str] | None = None) -> set[int]:
        """Return the refs reachable from ``ref`` following pointer fields.

        If ``fields`` is given only those field names are followed.  Pointer
        values stored in field arrays (lists) are followed element-wise.
        """
        seen: set[int] = set()
        stack = [ref]
        while stack:
            cur = stack.pop()
            if cur == NULL_REF or cur in seen or cur not in self._cells:
                continue
            seen.add(cur)
            cell = self._cells[cur]
            for fname, value in cell.fields.items():
                if fields is not None and fname not in fields:
                    continue
                for target in _pointer_values(value):
                    if target not in seen:
                        stack.append(target)
        return seen

    def edges(self, fields: set[str] | None = None) -> Iterator[tuple[int, str, int]]:
        """Yield ``(source_ref, field, target_ref)`` for every non-NULL pointer edge."""
        for cell in self._cells.values():
            for fname, value in cell.fields.items():
                if fields is not None and fname not in fields:
                    continue
                for target in _pointer_values(value):
                    if target != NULL_REF and target in self._cells:
                        yield (cell.ref, fname, target)

    def snapshot(self) -> dict[int, dict[str, Any]]:
        """A deep-ish copy of the heap contents for test assertions."""
        return {
            ref: {name: (list(v) if isinstance(v, list) else v) for name, v in cell.fields.items()}
            for ref, cell in self._cells.items()
        }


def _pointer_values(value: Any) -> Iterator[int]:
    """Yield the heap references contained in a field value."""
    if isinstance(value, bool):
        return
    if isinstance(value, int):
        yield value
    elif isinstance(value, list):
        for item in value:
            if isinstance(item, int) and not isinstance(item, bool):
                yield item
