"""Control-flow graphs for functions of the toy language.

The path-matrix dataflow analysis (:mod:`repro.pathmatrix.analysis`) iterates
to a fixed point over this CFG.  Basic blocks contain *simple* statements
only (assignments, field assignments, var decls, expression statements,
returns); structured control flow (``if``/``while``/``for``) is lowered to
edges between blocks, with the branch condition attached to the edge-owning
block so analyses may refine facts on the true/false branches (e.g. the
``p <> NULL`` test of a traversal loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.lang.ast_nodes import (
    Assign,
    Block,
    Expr,
    ExprStmt,
    FieldAssign,
    For,
    FunctionDecl,
    If,
    IntLit,
    Name,
    ParallelFor,
    Return,
    Stmt,
    VarDecl,
    While,
    BinOp,
)


@dataclass
class BasicBlock:
    """A straight-line sequence of simple statements."""

    index: int
    label: str = ""
    statements: list[Stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)
    branch_condition: Expr | None = None
    # loop bookkeeping for the transformation passes
    loop_header_of: Stmt | None = None

    def add_statement(self, stmt: Stmt) -> None:
        self.statements.append(stmt)

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.statements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.index}, {self.label!r}, {len(self.statements)} stmts)"


@dataclass
class CFG:
    """Control-flow graph of a single function."""

    function: str
    blocks: list[BasicBlock] = field(default_factory=list)
    entry: int = 0
    exit: int = 0

    def new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(index=len(self.blocks), label=label)
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)
        if src not in self.blocks[dst].predecessors:
            self.blocks[dst].predecessors.append(src)

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def reverse_postorder(self) -> list[int]:
        """Return block indices in reverse postorder from the entry block.

        Iterative DFS so that very deep CFGs (e.g. the generated stress
        programs of the performance benchmarks) do not exhaust the Python
        recursion limit.
        """
        visited: set[int] = {self.entry}
        order: list[int] = []
        stack: list[tuple[int, Iterator[int]]] = [
            (self.entry, iter(self.blocks[self.entry].successors))
        ]
        while stack:
            idx, successors = stack[-1]
            nxt = None
            for succ in successors:
                if succ not in visited:
                    nxt = succ
                    break
            if nxt is None:
                order.append(idx)
                stack.pop()
            else:
                visited.add(nxt)
                stack.append((nxt, iter(self.blocks[nxt].successors)))
        order.reverse()
        # include unreachable blocks at the end so analyses stay total
        for blk in self.blocks:
            if blk.index not in visited:
                order.append(blk.index)
        return order

    def loop_headers(self) -> list[int]:
        """Blocks that are targets of a back edge (approximate, DFS-based)."""
        headers: set[int] = set()
        visited: set[int] = {self.entry}
        onstack: set[int] = {self.entry}
        stack: list[tuple[int, Iterator[int]]] = [
            (self.entry, iter(self.blocks[self.entry].successors))
        ]
        while stack:
            idx, successors = stack[-1]
            nxt = None
            for succ in successors:
                if succ in onstack:
                    headers.add(succ)
                elif succ not in visited:
                    nxt = succ
                    break
            if nxt is None:
                onstack.discard(idx)
                stack.pop()
            else:
                visited.add(nxt)
                onstack.add(nxt)
                stack.append((nxt, iter(self.blocks[nxt].successors)))
        return sorted(headers)

    def statement_count(self) -> int:
        return sum(len(b.statements) for b in self.blocks)


class _CFGBuilder:
    """Lower one function body to a CFG."""

    def __init__(self, func: FunctionDecl):
        self.func = func
        self.cfg = CFG(function=func.name)

    def build(self) -> CFG:
        entry = self.cfg.new_block("entry")
        self.cfg.entry = entry.index
        last = self._lower_block(self.func.body, entry)
        exit_block = self.cfg.new_block("exit")
        self.cfg.exit = exit_block.index
        if last is not None:
            self.cfg.add_edge(last.index, exit_block.index)
        # returns jump straight to exit
        for block in self.cfg.blocks:
            if block.statements and isinstance(block.statements[-1], Return):
                if exit_block.index not in block.successors:
                    self.cfg.add_edge(block.index, exit_block.index)
        return self.cfg

    def _lower_block(self, block: Block, current: BasicBlock) -> BasicBlock | None:
        """Lower ``block`` starting in ``current``; return the fall-through block."""
        for stmt in block.statements:
            if current is None:
                # unreachable code after a return — attach to a fresh block
                current = self.cfg.new_block("unreachable")
            current = self._lower_statement(stmt, current)
        return current

    def _lower_statement(self, stmt: Stmt, current: BasicBlock) -> BasicBlock | None:
        if isinstance(stmt, (Assign, FieldAssign, VarDecl, ExprStmt)):
            current.add_statement(stmt)
            return current
        if isinstance(stmt, Return):
            current.add_statement(stmt)
            return None  # control does not fall through
        if isinstance(stmt, Block):
            return self._lower_block(stmt, current)
        if isinstance(stmt, If):
            return self._lower_if(stmt, current)
        if isinstance(stmt, While):
            return self._lower_while(stmt, current)
        if isinstance(stmt, (For, ParallelFor)):
            return self._lower_for(stmt, current)
        # unknown statement kinds are treated as opaque simple statements
        current.add_statement(stmt)
        return current

    def _lower_if(self, stmt: If, current: BasicBlock) -> BasicBlock:
        cond_block = current
        cond_block.branch_condition = stmt.cond
        then_entry = self.cfg.new_block("if.then")
        self.cfg.add_edge(cond_block.index, then_entry.index)
        then_exit = self._lower_block(stmt.then_body, then_entry)
        join = self.cfg.new_block("if.join")
        if stmt.else_body is not None:
            else_entry = self.cfg.new_block("if.else")
            self.cfg.add_edge(cond_block.index, else_entry.index)
            else_exit = self._lower_block(stmt.else_body, else_entry)
            if else_exit is not None:
                self.cfg.add_edge(else_exit.index, join.index)
        else:
            self.cfg.add_edge(cond_block.index, join.index)
        if then_exit is not None:
            self.cfg.add_edge(then_exit.index, join.index)
        return join

    def _lower_while(self, stmt: While, current: BasicBlock) -> BasicBlock:
        header = self.cfg.new_block("while.header")
        header.branch_condition = stmt.cond
        header.loop_header_of = stmt
        self.cfg.add_edge(current.index, header.index)
        body_entry = self.cfg.new_block("while.body")
        self.cfg.add_edge(header.index, body_entry.index)
        body_exit = self._lower_block(stmt.body, body_entry)
        if body_exit is not None:
            self.cfg.add_edge(body_exit.index, header.index)
        after = self.cfg.new_block("while.exit")
        self.cfg.add_edge(header.index, after.index)
        return after

    def _lower_for(self, stmt: For | ParallelFor, current: BasicBlock) -> BasicBlock:
        # Lower as: i = lo; while i <= hi { body; i = i + step }
        init = Assign(target=stmt.var, value=stmt.lo, line=stmt.line)
        current.add_statement(init)
        header = self.cfg.new_block("for.header")
        header.loop_header_of = stmt
        header.branch_condition = BinOp(op="<=", left=Name(stmt.var), right=stmt.hi)
        self.cfg.add_edge(current.index, header.index)
        body_entry = self.cfg.new_block("for.body")
        self.cfg.add_edge(header.index, body_entry.index)
        body_exit = self._lower_block(stmt.body, body_entry)
        step: Expr = stmt.step if stmt.step is not None else IntLit(1)
        incr = Assign(
            target=stmt.var,
            value=BinOp(op="+", left=Name(stmt.var), right=step),
            line=stmt.line,
        )
        if body_exit is not None:
            body_exit.add_statement(incr)
            self.cfg.add_edge(body_exit.index, header.index)
        after = self.cfg.new_block("for.exit")
        self.cfg.add_edge(header.index, after.index)
        return after


def build_cfg(func: FunctionDecl) -> CFG:
    """Build the control-flow graph of ``func``."""
    return _CFGBuilder(func).build()
