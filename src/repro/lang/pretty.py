"""Pretty-printer (unparser) for the toy language.

``unparse(parse_program(src))`` produces text that parses back to an
equivalent AST — a property exercised by round-trip tests.  The transformation
passes also use it to show before/after program text in reports.
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    ArrayLit,
    Assign,
    BinOp,
    Block,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldAssign,
    FieldDecl,
    FloatLit,
    For,
    FunctionDecl,
    If,
    IndexAccess,
    IntLit,
    Name,
    New,
    NullLit,
    ParallelFor,
    Program,
    Return,
    Stmt,
    StringLit,
    TypeDecl,
    UnaryOp,
    VarDecl,
    While,
)


class PrettyPrinter:
    """Render AST nodes back to surface syntax."""

    def __init__(self, indent: str = "  "):
        self.indent_unit = indent

    # -- program ------------------------------------------------------------
    def program(self, program: Program) -> str:
        parts: list[str] = []
        for decl in program.types:
            parts.append(self.type_decl(decl))
        for func in program.functions:
            parts.append(self.function(func))
        return "\n\n".join(parts) + "\n"

    def type_decl(self, decl: TypeDecl) -> str:
        dims = "".join(f"[{d}]" for d in decl.dimensions)
        header = f"type {decl.name} {dims}".rstrip()
        if decl.independences:
            clauses = ", ".join(f"{a}||{b}" for a, b in decl.independences)
            header += f" where {clauses}"
        lines = [header, "{"]
        for f in self._grouped_fields(decl):
            lines.append(self.indent_unit + f)
        lines.append("};")
        return "\n".join(lines)

    def _grouped_fields(self, decl: TypeDecl) -> list[str]:
        """Re-group fields declared together (sharing a ``group`` id)."""
        rendered: list[str] = []
        i = 0
        fields = decl.fields
        while i < len(fields):
            f = fields[i]
            group = [f]
            if f.group is not None:
                j = i + 1
                while j < len(fields) and fields[j].group == f.group:
                    group.append(fields[j])
                    j += 1
                i = j
            else:
                i += 1
            rendered.append(self._field_group(group))
        return rendered

    def _field_group(self, group: list[FieldDecl]) -> str:
        first = group[0]
        names = []
        for f in group:
            star = "*" if f.is_pointer else ""
            size = f"[{f.array_size}]" if f.array_size is not None else ""
            names.append(f"{star}{f.name}{size}")
        text = f"{first.type_name} {', '.join(names)}"
        if first.adds is not None:
            text += f" {first.adds}"
        return text + ";"

    def function(self, func: FunctionDecl) -> str:
        kw = "procedure" if func.is_procedure else "function"
        params = ", ".join(p.name for p in func.params)
        header = f"{kw} {func.name}({params})"
        return header + "\n" + self.block(func.body, 0)

    # -- statements ------------------------------------------------------------
    def block(self, block: Block, level: int) -> str:
        pad = self.indent_unit * level
        lines = [pad + "{"]
        for stmt in block.statements:
            lines.append(self.statement(stmt, level + 1))
        lines.append(pad + "}")
        return "\n".join(lines)

    def statement(self, stmt: Stmt, level: int) -> str:
        pad = self.indent_unit * level
        if isinstance(stmt, VarDecl):
            if stmt.init is not None:
                return f"{pad}var {stmt.name} = {self.expr(stmt.init)};"
            return f"{pad}var {stmt.name};"
        if isinstance(stmt, Assign):
            return f"{pad}{stmt.target} = {self.expr(stmt.value)};"
        if isinstance(stmt, FieldAssign):
            index = f"[{self.expr(stmt.index)}]" if stmt.index is not None else ""
            return (
                f"{pad}{self.expr(stmt.base)}->{stmt.field}{index} = "
                f"{self.expr(stmt.value)};"
            )
        if isinstance(stmt, ExprStmt):
            return f"{pad}{self.expr(stmt.expr)};"
        if isinstance(stmt, Return):
            if stmt.value is not None:
                return f"{pad}return {self.expr(stmt.value)};"
            return f"{pad}return;"
        if isinstance(stmt, Block):
            return self.block(stmt, level)
        if isinstance(stmt, If):
            text = f"{pad}if {self.expr(stmt.cond)} then\n" + self.block(stmt.then_body, level)
            if stmt.else_body is not None:
                text += f"\n{pad}else\n" + self.block(stmt.else_body, level)
            return text
        if isinstance(stmt, While):
            return f"{pad}while {self.expr(stmt.cond)}\n" + self.block(stmt.body, level)
        if isinstance(stmt, For):
            step = f" step {self.expr(stmt.step)}" if stmt.step is not None else ""
            return (
                f"{pad}for {stmt.var} = {self.expr(stmt.lo)} to {self.expr(stmt.hi)}{step}\n"
                + self.block(stmt.body, level)
            )
        if isinstance(stmt, ParallelFor):
            step = f" step {self.expr(stmt.step)}" if stmt.step is not None else ""
            return (
                f"{pad}for {stmt.var} = {self.expr(stmt.lo)} to {self.expr(stmt.hi)}{step}"
                f" in parallel\n" + self.block(stmt.body, level)
            )
        return f"{pad}/* <unprintable {type(stmt).__name__}> */"

    # -- expressions ---------------------------------------------------------
    def expr(self, expr: Expr) -> str:
        if isinstance(expr, IntLit):
            return str(expr.value)
        if isinstance(expr, FloatLit):
            return repr(expr.value)
        if isinstance(expr, BoolLit):
            return "true" if expr.value else "false"
        if isinstance(expr, StringLit):
            escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if isinstance(expr, NullLit):
            return "NULL"
        if isinstance(expr, Name):
            return expr.ident
        if isinstance(expr, New):
            return f"new {expr.type_name}"
        if isinstance(expr, FieldAccess):
            return f"{self.expr(expr.base)}->{expr.field}"
        if isinstance(expr, IndexAccess):
            return f"{self.expr(expr.base)}[{self.expr(expr.index)}]"
        if isinstance(expr, Call):
            return f"{expr.func}({', '.join(self.expr(a) for a in expr.args)})"
        if isinstance(expr, BinOp):
            return f"({self.expr(expr.left)} {expr.op} {self.expr(expr.right)})"
        if isinstance(expr, UnaryOp):
            if expr.op == "not":
                return f"(not {self.expr(expr.operand)})"
            return f"({expr.op}{self.expr(expr.operand)})"
        if isinstance(expr, ArrayLit):
            return "[" + ", ".join(self.expr(e) for e in expr.elements) + "]"
        return f"/* <unprintable {type(expr).__name__}> */"


def unparse(node: Program | FunctionDecl | Stmt | Expr) -> str:
    """Render ``node`` back to source text."""
    printer = PrettyPrinter()
    if isinstance(node, Program):
        return printer.program(node)
    if isinstance(node, FunctionDecl):
        return printer.function(node)
    if isinstance(node, Stmt):
        return printer.statement(node, 0)
    return printer.expr(node)
