"""Recursive-descent parser for the toy pointer language.

Grammar (informally)::

    program     := (type_decl | func_decl)*
    type_decl   := 'type' IDENT dim* where? '{' field_decl* '}' ';'?
    dim         := '[' IDENT ']'
    where       := 'where' IDENT '||' IDENT (',' IDENT '||' IDENT)*
    field_decl  := type_name declarator (',' declarator)* adds_spec? ';'
    declarator  := '*'? IDENT ('[' INT ']')?
    adds_spec   := 'is' 'uniquely'? ('forward'|'backward'|'unknown') 'along' IDENT

    func_decl   := ('function'|'procedure') IDENT '(' param_list ')' block
    block       := '{' stmt* '}'
    stmt        := var_decl | assign | field_assign | if | while | for
                 | return | call ';' | block
    var_decl    := 'var' IDENT ('=' expr)? ';'
    assign      := IDENT '=' expr ';'
    field_assign:= postfix '->' IDENT ('[' expr ']')? '=' expr ';'
    if          := 'if' expr 'then'? stmt_or_block ('else' stmt_or_block)?
    while       := 'while' expr stmt_or_block
    for         := 'for' IDENT '=' expr 'to' expr ('step' expr)?
                   ('in' 'parallel')? stmt_or_block

Expressions use the usual precedence: or < and < comparison < additive <
multiplicative < unary < postfix ('->' field access, '[...]' indexing,
call) < primary.
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    AddsFieldSpec,
    ArrayLit,
    Assign,
    BinOp,
    Block,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldAssign,
    FieldDecl,
    FloatLit,
    For,
    FunctionDecl,
    If,
    IndexAccess,
    IntLit,
    Name,
    New,
    NullLit,
    ParallelFor,
    Param,
    Program,
    Return,
    Stmt,
    StringLit,
    TypeDecl,
    UnaryOp,
    VarDecl,
    While,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind as K


_SCALAR_KEYWORDS = {
    K.KW_INT: "int",
    K.KW_FLOAT: "float",
    K.KW_BOOL: "bool",
    K.KW_STRING: "string",
    K.KW_VOID: "void",
}


class Parser:
    """Parse a token stream into a :class:`Program`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self._group_counter = 0

    # -- token helpers -----------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, kind: K, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not K.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: K, what: str | None = None) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            expected = what or kind.name
            raise ParseError(
                f"expected {expected}, found {tok.text!r}", tok.line, tok.col
            )
        return self._advance()

    def _match(self, *kinds: K) -> Token | None:
        if self._peek().kind in kinds:
            return self._advance()
        return None

    # -- program level -----------------------------------------------------
    def parse_program(self) -> Program:
        program = Program()
        while not self._at(K.EOF):
            if self._at(K.KW_TYPE):
                program.types.append(self.parse_type_decl())
            elif self._at(K.KW_FUNCTION) or self._at(K.KW_PROCEDURE):
                program.functions.append(self.parse_function())
            else:
                tok = self._peek()
                raise ParseError(
                    f"expected 'type', 'function' or 'procedure', found {tok.text!r}",
                    tok.line,
                    tok.col,
                )
        return program

    # -- type declarations ---------------------------------------------------
    def parse_type_decl(self) -> TypeDecl:
        start = self._expect(K.KW_TYPE)
        name = self._expect(K.IDENT, "type name").text
        dims: list[str] = []
        while self._at(K.LBRACKET):
            self._advance()
            dims.append(self._expect(K.IDENT, "dimension name").text)
            self._expect(K.RBRACKET)
        independences: list[tuple[str, str]] = []
        if self._match(K.KW_WHERE):
            independences.append(self._parse_independence())
            while self._match(K.COMMA):
                independences.append(self._parse_independence())
        self._expect(K.LBRACE)
        fields: list[FieldDecl] = []
        while not self._at(K.RBRACE):
            fields.extend(self.parse_field_decl())
        self._expect(K.RBRACE)
        self._match(K.SEMI)
        return TypeDecl(
            name=name,
            fields=fields,
            dimensions=dims,
            independences=independences,
            line=start.line,
        )

    def _parse_independence(self) -> tuple[str, str]:
        a = self._expect(K.IDENT, "dimension name").text
        self._expect(K.INDEP, "'||'")
        b = self._expect(K.IDENT, "dimension name").text
        return (a, b)

    def _parse_type_name(self) -> str:
        tok = self._peek()
        if tok.kind in _SCALAR_KEYWORDS:
            self._advance()
            return _SCALAR_KEYWORDS[tok.kind]
        return self._expect(K.IDENT, "type name").text

    def parse_field_decl(self) -> list[FieldDecl]:
        line = self._peek().line
        type_name = self._parse_type_name()
        self._group_counter += 1
        group = self._group_counter
        declarators: list[tuple[str, bool, int | None]] = []
        declarators.append(self._parse_declarator())
        while self._match(K.COMMA):
            declarators.append(self._parse_declarator())
        adds: AddsFieldSpec | None = None
        if self._at(K.KW_IS):
            adds = self._parse_adds_spec()
        self._expect(K.SEMI)
        fields = []
        for fname, is_ptr, size in declarators:
            fields.append(
                FieldDecl(
                    name=fname,
                    type_name=type_name,
                    is_pointer=is_ptr,
                    array_size=size,
                    adds=adds,
                    group=group if len(declarators) > 1 else None,
                    line=line,
                )
            )
        return fields

    def _parse_declarator(self) -> tuple[str, bool, int | None]:
        is_pointer = self._match(K.STAR) is not None
        name = self._expect(K.IDENT, "field name").text
        size: int | None = None
        if self._match(K.LBRACKET):
            size_tok = self._expect(K.INT_LIT, "array size")
            size = int(size_tok.text)
            self._expect(K.RBRACKET)
        return (name, is_pointer, size)

    def _parse_adds_spec(self) -> AddsFieldSpec:
        self._expect(K.KW_IS)
        unique = self._match(K.KW_UNIQUELY) is not None
        tok = self._peek()
        if tok.kind is K.KW_FORWARD:
            direction = "forward"
        elif tok.kind is K.KW_BACKWARD:
            direction = "backward"
        elif tok.kind is K.KW_UNKNOWN:
            direction = "unknown"
        else:
            raise ParseError(
                f"expected 'forward', 'backward' or 'unknown', found {tok.text!r}",
                tok.line,
                tok.col,
            )
        self._advance()
        self._expect(K.KW_ALONG, "'along'")
        dimension = self._expect(K.IDENT, "dimension name").text
        return AddsFieldSpec(dimension=dimension, direction=direction, unique=unique)

    # -- functions -----------------------------------------------------------
    def parse_function(self) -> FunctionDecl:
        kw = self._advance()  # function | procedure
        is_procedure = kw.kind is K.KW_PROCEDURE
        name = self._expect(K.IDENT, "function name").text
        self._expect(K.LPAREN)
        params: list[Param] = []
        if not self._at(K.RPAREN):
            params.append(self._parse_param())
            while self._match(K.COMMA):
                params.append(self._parse_param())
        self._expect(K.RPAREN)
        body = self.parse_block()
        return FunctionDecl(
            name=name,
            params=params,
            body=body,
            is_procedure=is_procedure,
            line=kw.line,
        )

    def _parse_param(self) -> Param:
        tok = self._expect(K.IDENT, "parameter name")
        type_name: str | None = None
        # optional trailing ": Type" annotation
        if self._at(K.IDENT) and self._peek().text == ":":  # pragma: no cover
            pass
        return Param(name=tok.text, type_name=type_name, line=tok.line)

    # -- statements ------------------------------------------------------------
    def parse_block(self) -> Block:
        lbrace = self._expect(K.LBRACE)
        stmts: list[Stmt] = []
        while not self._at(K.RBRACE):
            stmts.append(self.parse_statement())
        self._expect(K.RBRACE)
        return Block(statements=stmts, line=lbrace.line)

    def _parse_stmt_or_block(self) -> Block:
        if self._at(K.LBRACE):
            return self.parse_block()
        stmt = self.parse_statement()
        return Block(statements=[stmt], line=stmt.line)

    def parse_statement(self) -> Stmt:
        tok = self._peek()
        if tok.kind is K.KW_VAR:
            return self._parse_var_decl()
        if tok.kind is K.KW_IF:
            return self._parse_if()
        if tok.kind is K.KW_WHILE:
            return self._parse_while()
        if tok.kind is K.KW_FOR:
            return self._parse_for()
        if tok.kind is K.KW_RETURN:
            return self._parse_return()
        if tok.kind is K.LBRACE:
            return self.parse_block()
        return self._parse_assign_or_call()

    def _parse_var_decl(self) -> VarDecl:
        kw = self._expect(K.KW_VAR)
        name = self._expect(K.IDENT, "variable name").text
        init: Expr | None = None
        if self._match(K.ASSIGN):
            init = self.parse_expression()
        self._expect(K.SEMI)
        return VarDecl(name=name, init=init, line=kw.line)

    def _parse_if(self) -> If:
        kw = self._expect(K.KW_IF)
        cond = self.parse_expression()
        self._match(K.KW_THEN)
        then_body = self._parse_stmt_or_block()
        else_body: Block | None = None
        if self._match(K.KW_ELSE):
            else_body = self._parse_stmt_or_block()
        return If(cond=cond, then_body=then_body, else_body=else_body, line=kw.line)

    def _parse_while(self) -> While:
        kw = self._expect(K.KW_WHILE)
        cond = self.parse_expression()
        body = self._parse_stmt_or_block()
        return While(cond=cond, body=body, line=kw.line)

    def _parse_for(self) -> Stmt:
        kw = self._expect(K.KW_FOR)
        var = self._expect(K.IDENT, "loop variable").text
        self._expect(K.ASSIGN)
        lo = self.parse_expression()
        self._expect(K.KW_TO, "'to'")
        hi = self.parse_expression()
        step: Expr | None = None
        if self._match(K.KW_STEP):
            step = self.parse_expression()
        parallel = False
        if self._match(K.KW_IN):
            self._expect(K.KW_PARALLEL, "'parallel'")
            parallel = True
        body = self._parse_stmt_or_block()
        if parallel:
            return ParallelFor(var=var, lo=lo, hi=hi, body=body, step=step, line=kw.line)
        return For(var=var, lo=lo, hi=hi, body=body, step=step, line=kw.line)

    def _parse_return(self) -> Return:
        kw = self._expect(K.KW_RETURN)
        value: Expr | None = None
        if not self._at(K.SEMI):
            value = self.parse_expression()
        self._expect(K.SEMI)
        return Return(value=value, line=kw.line)

    def _parse_assign_or_call(self) -> Stmt:
        line = self._peek().line
        lhs = self.parse_postfix()
        if self._match(K.ASSIGN):
            value = self.parse_expression()
            self._expect(K.SEMI)
            return self._make_assignment(lhs, value, line)
        # statement expression — must be a call to be meaningful
        self._expect(K.SEMI)
        return ExprStmt(expr=lhs, line=line)

    def _make_assignment(self, lhs: Expr, value: Expr, line: int) -> Stmt:
        if isinstance(lhs, Name):
            return Assign(target=lhs.ident, value=value, line=line)
        if isinstance(lhs, FieldAccess):
            return FieldAssign(base=lhs.base, field=lhs.field, value=value, line=line)
        if isinstance(lhs, IndexAccess) and isinstance(lhs.base, FieldAccess):
            return FieldAssign(
                base=lhs.base.base,
                field=lhs.base.field,
                value=value,
                index=lhs.index,
                line=line,
            )
        raise ParseError(f"invalid assignment target: {lhs}", line)

    # -- expressions -------------------------------------------------------------
    def parse_expression(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._at(K.KW_OR):
            tok = self._advance()
            right = self._parse_and()
            left = BinOp(op="or", left=left, right=right, line=tok.line)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._at(K.KW_AND):
            tok = self._advance()
            right = self._parse_not()
            left = BinOp(op="and", left=left, right=right, line=tok.line)
        return left

    def _parse_not(self) -> Expr:
        if self._at(K.KW_NOT):
            tok = self._advance()
            operand = self._parse_not()
            return UnaryOp(op="not", operand=operand, line=tok.line)
        return self._parse_comparison()

    _COMPARISONS = {
        K.EQ: "==",
        K.NEQ: "<>",
        K.LT: "<",
        K.LE: "<=",
        K.GT: ">",
        K.GE: ">=",
    }

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        while self._peek().kind in self._COMPARISONS:
            tok = self._advance()
            op = self._COMPARISONS[tok.kind]
            right = self._parse_additive()
            left = BinOp(op=op, left=left, right=right, line=tok.line)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in (K.PLUS, K.MINUS):
            tok = self._advance()
            op = "+" if tok.kind is K.PLUS else "-"
            right = self._parse_multiplicative()
            left = BinOp(op=op, left=left, right=right, line=tok.line)
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._peek().kind in (K.STAR, K.SLASH, K.PERCENT):
            tok = self._advance()
            op = {"*": "*", "/": "/", "%": "%"}[tok.text]
            right = self._parse_unary()
            left = BinOp(op=op, left=left, right=right, line=tok.line)
        return left

    def _parse_unary(self) -> Expr:
        if self._at(K.MINUS):
            tok = self._advance()
            operand = self._parse_unary()
            return UnaryOp(op="-", operand=operand, line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self._at(K.ARROW):
                tok = self._advance()
                fname = self._expect(K.IDENT, "field name").text
                expr = FieldAccess(base=expr, field=fname, line=tok.line)
            elif self._at(K.DOT):
                tok = self._advance()
                fname = self._expect(K.IDENT, "field name").text
                expr = FieldAccess(base=expr, field=fname, line=tok.line)
            elif self._at(K.LBRACKET):
                tok = self._advance()
                index = self.parse_expression()
                self._expect(K.RBRACKET)
                expr = IndexAccess(base=expr, index=index, line=tok.line)
            elif self._at(K.LPAREN) and isinstance(expr, Name):
                tok = self._advance()
                args: list[Expr] = []
                if not self._at(K.RPAREN):
                    args.append(self.parse_expression())
                    while self._match(K.COMMA):
                        args.append(self.parse_expression())
                self._expect(K.RPAREN)
                expr = Call(func=expr.ident, args=args, line=tok.line)
            else:
                break
        return expr

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.kind is K.IDENT:
            self._advance()
            return Name(ident=tok.text, line=tok.line)
        if tok.kind is K.INT_LIT:
            self._advance()
            return IntLit(value=int(tok.text), line=tok.line)
        if tok.kind is K.FLOAT_LIT:
            self._advance()
            return FloatLit(value=float(tok.text), line=tok.line)
        if tok.kind is K.STRING_LIT:
            self._advance()
            return StringLit(value=tok.text, line=tok.line)
        if tok.kind is K.KW_TRUE:
            self._advance()
            return BoolLit(value=True, line=tok.line)
        if tok.kind is K.KW_FALSE:
            self._advance()
            return BoolLit(value=False, line=tok.line)
        if tok.kind is K.KW_NULL:
            self._advance()
            return NullLit(line=tok.line)
        if tok.kind is K.KW_NEW:
            self._advance()
            type_name_tok = self._peek()
            if type_name_tok.kind in _SCALAR_KEYWORDS:
                self._advance()
                type_name = _SCALAR_KEYWORDS[type_name_tok.kind]
            else:
                type_name = self._expect(K.IDENT, "type name").text
            return New(type_name=type_name, line=tok.line)
        if tok.kind is K.LPAREN:
            self._advance()
            expr = self.parse_expression()
            self._expect(K.RPAREN)
            return expr
        if tok.kind is K.LBRACKET:
            self._advance()
            elements: list[Expr] = []
            if not self._at(K.RBRACKET):
                elements.append(self.parse_expression())
                while self._match(K.COMMA):
                    elements.append(self.parse_expression())
            self._expect(K.RBRACKET)
            return ArrayLit(elements=elements, line=tok.line)
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)


def parse_program(source: str) -> Program:
    """Tokenize and parse ``source`` into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_expression(source: str) -> Expr:
    """Parse a single expression (useful in tests)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expression()
    parser._expect(K.EOF)
    return expr
