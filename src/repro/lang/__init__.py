"""Toy imperative pointer language used as the analysis substrate.

The paper ("Applying an Abstract Data Structure Description Approach to
Parallelizing Scientific Pointer Programs", Hummel/Nicolau/Hendren 1992)
describes its analyses over a C-like imperative language with recursive
record types, pointer fields, ``NULL``, dynamic allocation, ``while`` loops
and recursive functions.  This subpackage provides that substrate:

* :mod:`repro.lang.tokens` / :mod:`repro.lang.lexer` — tokenizer,
* :mod:`repro.lang.ast_nodes` — the abstract syntax tree,
* :mod:`repro.lang.parser` — a recursive-descent parser (including the ADDS
  extensions to type declarations),
* :mod:`repro.lang.types` — the type system (records, pointers, scalars),
* :mod:`repro.lang.symbols` — scopes and symbol tables,
* :mod:`repro.lang.cfg` — per-function control flow graphs,
* :mod:`repro.lang.heap` / :mod:`repro.lang.interpreter` — a reference
  interpreter with an explicit heap, used to check that the parallelizing
  transformations are semantics preserving,
* :mod:`repro.lang.pretty` — an unparser,
* :mod:`repro.lang.builder` — a small fluent API for building programs from
  Python code (handy in tests).
"""

from repro.lang.errors import (
    InterpreterLimitError,
    LangError,
    LexError,
    ParseError,
    TypeCheckError,
    RuntimeLangError,
)
from repro.lang.ast_nodes import (
    Program,
    TypeDecl,
    FieldDecl,
    FunctionDecl,
    Param,
    VarDecl,
    Block,
    Assign,
    FieldAssign,
    If,
    While,
    For,
    ParallelFor,
    Return,
    ExprStmt,
    Call,
    Name,
    FieldAccess,
    IndexAccess,
    NullLit,
    IntLit,
    FloatLit,
    BoolLit,
    StringLit,
    BinOp,
    UnaryOp,
    New,
    ArrayLit,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_program
from repro.lang.types import (
    Type,
    IntType,
    FloatType,
    BoolType,
    VoidType,
    StringType,
    PointerType,
    RecordType,
    ArrayType,
    INT,
    FLOAT,
    BOOL,
    VOID,
    STRING,
)
from repro.lang.symbols import Symbol, Scope, SymbolTable
from repro.lang.typecheck import TypeChecker, check_program
from repro.lang.cfg import CFG, BasicBlock, build_cfg
from repro.lang.heap import Heap, HeapCell, NULL_REF
from repro.lang.interpreter import Interpreter, run_program
from repro.lang.pretty import PrettyPrinter, unparse
from repro.lang.builder import ProgramBuilder

__all__ = [
    "InterpreterLimitError",
    "LangError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "RuntimeLangError",
    "Program",
    "TypeDecl",
    "FieldDecl",
    "FunctionDecl",
    "Param",
    "VarDecl",
    "Block",
    "Assign",
    "FieldAssign",
    "If",
    "While",
    "For",
    "ParallelFor",
    "Return",
    "ExprStmt",
    "Call",
    "Name",
    "FieldAccess",
    "IndexAccess",
    "NullLit",
    "IntLit",
    "FloatLit",
    "BoolLit",
    "StringLit",
    "BinOp",
    "UnaryOp",
    "New",
    "ArrayLit",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "Type",
    "IntType",
    "FloatType",
    "BoolType",
    "VoidType",
    "StringType",
    "PointerType",
    "RecordType",
    "ArrayType",
    "INT",
    "FLOAT",
    "BOOL",
    "VOID",
    "STRING",
    "Symbol",
    "Scope",
    "SymbolTable",
    "TypeChecker",
    "check_program",
    "CFG",
    "BasicBlock",
    "build_cfg",
    "Heap",
    "HeapCell",
    "NULL_REF",
    "Interpreter",
    "run_program",
    "PrettyPrinter",
    "unparse",
    "ProgramBuilder",
]
