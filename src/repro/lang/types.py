"""Static type representations for the toy language.

The type system is intentionally small: scalars (int, float, bool, string,
void), record types built from :class:`~repro.lang.ast_nodes.TypeDecl`,
pointers to records, and fixed-size arrays of pointers (used by the octree's
``subtrees[8]`` field).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class Type:
    """Base class for all static types."""

    def is_pointer(self) -> bool:
        return False

    def is_numeric(self) -> bool:
        return False

    def is_record(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False


@dataclass(frozen=True)
class IntType(Type):
    def is_numeric(self) -> bool:
        return True

    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class FloatType(Type):
    def is_numeric(self) -> bool:
        return True

    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class StringType(Type):
    def __str__(self) -> str:
        return "string"


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


INT = IntType()
FLOAT = FloatType()
BOOL = BoolType()
STRING = StringType()
VOID = VoidType()


@dataclass(frozen=True)
class RecordType(Type):
    """A named record type; field types are resolved lazily via the program."""

    name: str

    def is_record(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(Type):
    """A pointer to a record type (``T *``)."""

    target: RecordType

    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.target.name}*"


@dataclass(frozen=True)
class ArrayType(Type):
    """A fixed-size array of ``element`` (only pointer arrays are used)."""

    element: Type
    size: Optional[int] = None

    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        size = "" if self.size is None else str(self.size)
        return f"{self.element}[{size}]"


_SCALARS = {
    "int": INT,
    "float": FLOAT,
    "bool": BOOL,
    "boolean": BOOL,
    "string": STRING,
    "void": VOID,
}


def scalar_type(name: str) -> Type | None:
    """Return the built-in scalar type named ``name``, or None."""
    return _SCALARS.get(name)


def type_from_name(name: str, is_pointer: bool, array_size: int | None = None) -> Type:
    """Build a :class:`Type` from a declared field/variable type name."""
    base: Type
    scalar = scalar_type(name)
    if scalar is not None and not is_pointer:
        base = scalar
    else:
        rec = RecordType(name)
        base = PointerType(rec) if is_pointer else rec
    if array_size is not None:
        return ArrayType(base, array_size)
    return base


def compatible(a: Type, b: Type) -> bool:
    """Assignment compatibility between two types.

    Numeric types interconvert; a NULL (modelled as a pointer to the special
    record ``__null__``) is compatible with any pointer type; otherwise types
    must be equal.
    """
    if a == b:
        return True
    if a.is_numeric() and b.is_numeric():
        return True
    if a.is_pointer() and b.is_pointer():
        an = a.target.name  # type: ignore[union-attr]
        bn = b.target.name  # type: ignore[union-attr]
        return an == "__null__" or bn == "__null__" or an == bn
    return False


NULL_POINTER = PointerType(RecordType("__null__"))
