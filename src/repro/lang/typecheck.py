"""A lightweight static checker / type inferencer for the toy language.

Local variables and parameters are declared without types (as in the paper's
pseudo-code), so this pass performs a simple flow-insensitive inference:

* a variable assigned ``new T`` or ``q->f`` (where ``f`` is a pointer field of
  a known record) is a pointer to the appropriate record type;
* a variable assigned another pointer variable inherits its type;
* variables only used with arithmetic are numeric.

The result — a :class:`TypeEnvironment` per function — is consumed by the
path-matrix analysis (to know which variables are pointer variables and to
which record type they point) and by the interpreter (for diagnostics only;
execution itself is dynamically typed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    ArrayLit,
    Assign,
    BinOp,
    Block,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldAssign,
    FloatLit,
    For,
    FunctionDecl,
    If,
    IndexAccess,
    IntLit,
    Name,
    New,
    NullLit,
    ParallelFor,
    Program,
    Return,
    Stmt,
    StringLit,
    UnaryOp,
    VarDecl,
    While,
    iter_statements,
)
from repro.lang.errors import TypeCheckError
from repro.lang.types import (
    BOOL,
    FLOAT,
    INT,
    NULL_POINTER,
    STRING,
    VOID,
    ArrayType,
    PointerType,
    RecordType,
    Type,
    scalar_type,
    type_from_name,
)


@dataclass
class TypeEnvironment:
    """Inferred types of locals/params for one function."""

    function: str
    types: dict[str, Type] = field(default_factory=dict)

    def pointer_variables(self) -> set[str]:
        return {name for name, ty in self.types.items() if ty.is_pointer()}

    def pointee_record(self, name: str) -> str | None:
        ty = self.types.get(name)
        if isinstance(ty, PointerType):
            return ty.target.name
        return None

    def get(self, name: str) -> Type | None:
        return self.types.get(name)


@dataclass
class CheckResult:
    """Output of :func:`check_program`."""

    program: Program
    environments: dict[str, TypeEnvironment] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    def env(self, function: str) -> TypeEnvironment:
        return self.environments[function]


class TypeChecker:
    """Checks declarations for consistency and infers variable types."""

    def __init__(self, program: Program):
        self.program = program
        self.result = CheckResult(program=program)

    # -- declaration-level checks -------------------------------------------
    def check(self) -> CheckResult:
        self._check_type_decls()
        self._check_function_names()
        for func in self.program.functions:
            env = self._infer_function(func)
            self.result.environments[func.name] = env
        return self.result

    def _check_type_decls(self) -> None:
        seen: set[str] = set()
        for decl in self.program.types:
            if decl.name in seen:
                raise TypeCheckError(f"duplicate type declaration {decl.name!r}", decl.line)
            seen.add(decl.name)
        known = seen | {"int", "float", "bool", "string", "void"}
        for decl in self.program.types:
            field_names: set[str] = set()
            for f in decl.fields:
                if f.name in field_names:
                    raise TypeCheckError(
                        f"duplicate field {f.name!r} in type {decl.name!r}", f.line
                    )
                field_names.add(f.name)
                if f.type_name not in known:
                    raise TypeCheckError(
                        f"field {decl.name}.{f.name} has unknown type {f.type_name!r}",
                        f.line,
                    )
                if f.is_pointer and scalar_type(f.type_name) is not None:
                    raise TypeCheckError(
                        f"field {decl.name}.{f.name}: pointers to scalars are not supported",
                        f.line,
                    )
                if f.adds is not None and not f.is_pointer:
                    raise TypeCheckError(
                        f"field {decl.name}.{f.name}: ADDS annotations only apply to pointer fields",
                        f.line,
                    )

    def _check_function_names(self) -> None:
        seen: set[str] = set()
        for func in self.program.functions:
            if func.name in seen:
                raise TypeCheckError(f"duplicate function {func.name!r}", func.line)
            seen.add(func.name)
            param_names: set[str] = set()
            for p in func.params:
                if p.name in param_names:
                    raise TypeCheckError(
                        f"duplicate parameter {p.name!r} in {func.name}", p.line
                    )
                param_names.add(p.name)

    # -- inference -----------------------------------------------------------
    def _field_owners(self, field_name: str) -> list[str]:
        """Record types declaring a field named ``field_name``."""
        return [t.name for t in self.program.types if t.field_named(field_name) is not None]

    def _infer_function(self, func: FunctionDecl) -> TypeEnvironment:
        env = TypeEnvironment(function=func.name)
        # iterate to a (small) fixed point: pointer-ness propagates through copies
        for _ in range(6):
            changed = False
            for stmt in iter_statements(func.body):
                changed |= self._infer_statement(stmt, env)
                changed |= self._infer_from_dereferences(stmt, env)
            if not changed:
                break
        return env

    def _infer_from_dereferences(self, stmt: Stmt, env: TypeEnvironment) -> bool:
        """Mark variables used as ``v->f`` as pointers to the field's owner type.

        When exactly one declared record type has a field named ``f`` the
        pointee is unambiguous; otherwise the variable is still recorded as a
        pointer, but to an unknown record (``__any__``).
        """
        changed = False
        nodes = list(stmt.walk())
        if isinstance(stmt, FieldAssign):
            nodes.append(FieldAccess(base=stmt.base, field=stmt.field))
        for node in nodes:
            if isinstance(node, FieldAccess) and isinstance(node.base, Name):
                name = node.base.ident
                current = env.types.get(name)
                if isinstance(current, PointerType) and current.target.name not in (
                    "__null__",
                    "__any__",
                ):
                    continue
                owners = self._field_owners(node.field)
                if len(owners) == 1:
                    changed |= self._force(env, name, PointerType(RecordType(owners[0])))
                else:
                    changed |= self._force(env, name, PointerType(RecordType("__any__")))
        return changed

    def _force(self, env: TypeEnvironment, name: str, ty: Type) -> bool:
        current = env.types.get(name)
        if current == ty:
            return False
        if isinstance(current, PointerType) and current.target.name not in (
            "__null__",
            "__any__",
        ):
            if isinstance(ty, PointerType) and ty.target.name == "__any__":
                return False
        env.types[name] = ty
        return True

    def _record_field_type(self, record_name: str, field_name: str) -> Type | None:
        decl = self.program.type_named(record_name)
        if decl is None:
            return None
        fdecl = decl.field_named(field_name)
        if fdecl is None:
            return None
        return type_from_name(fdecl.type_name, fdecl.is_pointer, fdecl.array_size)

    def _expr_type(self, expr: Expr, env: TypeEnvironment) -> Type | None:
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, FloatLit):
            return FLOAT
        if isinstance(expr, BoolLit):
            return BOOL
        if isinstance(expr, StringLit):
            return STRING
        if isinstance(expr, NullLit):
            return NULL_POINTER
        if isinstance(expr, Name):
            return env.types.get(expr.ident)
        if isinstance(expr, New):
            return PointerType(RecordType(expr.type_name))
        if isinstance(expr, FieldAccess):
            base_ty = self._expr_type(expr.base, env)
            if isinstance(base_ty, PointerType):
                return self._record_field_type(base_ty.target.name, expr.field)
            return None
        if isinstance(expr, IndexAccess):
            base_ty = self._expr_type(expr.base, env)
            if isinstance(base_ty, ArrayType):
                return base_ty.element
            return None
        if isinstance(expr, BinOp):
            if expr.op in ("==", "<>", "<", "<=", ">", ">=", "and", "or"):
                return BOOL
            lt = self._expr_type(expr.left, env)
            rt = self._expr_type(expr.right, env)
            if FLOAT in (lt, rt):
                return FLOAT
            if lt is not None:
                return lt
            return rt
        if isinstance(expr, UnaryOp):
            if expr.op == "not":
                return BOOL
            return self._expr_type(expr.operand, env)
        if isinstance(expr, Call):
            return self._call_return_type(expr, env)
        if isinstance(expr, ArrayLit):
            if expr.elements:
                el = self._expr_type(expr.elements[0], env)
                if el is not None:
                    return ArrayType(el, len(expr.elements))
            return None
        return None

    def _call_return_type(self, call: Call, env: TypeEnvironment) -> Type | None:
        callee = self.program.function_named(call.func)
        if callee is None:
            return None
        # infer from return statements of the callee (one level, no recursion)
        callee_env = self.result.environments.get(callee.name)
        for stmt in iter_statements(callee.body):
            if isinstance(stmt, Return) and stmt.value is not None:
                if callee_env is not None:
                    ty = self._expr_type(stmt.value, callee_env)
                    if ty is not None:
                        return ty
                if isinstance(stmt.value, New):
                    return PointerType(RecordType(stmt.value.type_name))
        return None

    def _merge(self, env: TypeEnvironment, name: str, ty: Type | None) -> bool:
        if ty is None:
            return False
        current = env.types.get(name)
        if current is None or current == NULL_POINTER:
            if current != ty:
                env.types[name] = ty
                return True
            return False
        if isinstance(current, PointerType) and isinstance(ty, PointerType):
            if current.target.name == "__null__" and ty.target.name != "__null__":
                env.types[name] = ty
                return True
        return False

    def _infer_statement(self, stmt: Stmt, env: TypeEnvironment) -> bool:
        changed = False
        if isinstance(stmt, VarDecl):
            if stmt.init is not None:
                changed |= self._merge(env, stmt.name, self._expr_type(stmt.init, env))
            elif stmt.name not in env.types:
                pass  # type unknown until first assignment
        elif isinstance(stmt, Assign):
            changed |= self._merge(env, stmt.target, self._expr_type(stmt.value, env))
            # backward propagation through pointer copies: in ``p = head`` a
            # pointer-typed ``p`` implies ``head`` is a pointer of the same type
            if isinstance(stmt.value, Name):
                target_ty = env.types.get(stmt.target)
                if isinstance(target_ty, PointerType) and target_ty.target.name not in (
                    "__null__",
                ):
                    changed |= self._merge(env, stmt.value.ident, target_ty)
        elif isinstance(stmt, (For, ParallelFor)):
            changed |= self._merge(env, stmt.var, INT)
        elif isinstance(stmt, FieldAssign):
            base_ty = self._expr_type(stmt.base, env)
            if base_ty is None and isinstance(stmt.base, Name):
                # dereferencing implies pointer-hood; record type unknown
                pass
        return changed


def check_program(program: Program) -> CheckResult:
    """Run declaration checks and type inference over ``program``."""
    return TypeChecker(program).check()


def inferred_return_type(
    program: Program, result: CheckResult, name: str
) -> str | None:
    """The type a call to ``name`` is inferred to have, as a stable string.

    This is the one ingredient of a caller's analysis that flows from a
    callee *without* passing through its effect summary: ``_call_return_type``
    reads the callee's return statements, so the callee's return type shapes
    the caller's type environment.  The incremental engine therefore folds
    this value into the callee's content-addressed summary artifact — an
    edit that changes it must invalidate callers even when the effect summary
    is untouched.  Returns ``None`` when nothing can be inferred (matching a
    call site's inference result).
    """
    func = program.function_named(name)
    if func is None:
        return None
    checker = TypeChecker(program)
    checker.result = result
    env = result.environments.get(name)
    for stmt in iter_statements(func.body):
        if isinstance(stmt, Return) and stmt.value is not None:
            if env is not None:
                ty = checker._expr_type(stmt.value, env)
                if ty is not None:
                    return str(ty)
            if isinstance(stmt.value, New):
                return str(PointerType(RecordType(stmt.value.type_name)))
    return None
