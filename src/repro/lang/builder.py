"""A small fluent API for constructing toy-language programs from Python.

Mostly used by tests and by the transformation passes when they need to
synthesize helper functions (e.g. the ``_BHL1_iteration`` procedure emitted
by strip-mining).  For anything longer, writing surface syntax and calling
:func:`repro.lang.parser.parse_program` is usually clearer.
"""

from __future__ import annotations

from typing import Sequence

from repro.lang.ast_nodes import (
    AddsFieldSpec,
    Assign,
    BinOp,
    Block,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldAssign,
    FieldDecl,
    FloatLit,
    For,
    FunctionDecl,
    If,
    IndexAccess,
    IntLit,
    Name,
    New,
    NullLit,
    ParallelFor,
    Param,
    Program,
    Return,
    Stmt,
    StringLit,
    TypeDecl,
    UnaryOp,
    VarDecl,
    While,
)


def _expr(value) -> Expr:
    """Coerce a Python value or AST node into an expression node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return BoolLit(value)
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, float):
        return FloatLit(value)
    if isinstance(value, str):
        return Name(value)
    if value is None:
        return NullLit()
    raise TypeError(f"cannot coerce {value!r} to an expression")


class E:
    """Expression constructors (static helpers)."""

    @staticmethod
    def name(ident: str) -> Name:
        return Name(ident)

    @staticmethod
    def lit(value) -> Expr:
        if isinstance(value, str):
            return StringLit(value)
        return _expr(value)

    @staticmethod
    def null() -> NullLit:
        return NullLit()

    @staticmethod
    def new(type_name: str) -> New:
        return New(type_name)

    @staticmethod
    def field(base, field_name: str) -> FieldAccess:
        return FieldAccess(base=_expr(base), field=field_name)

    @staticmethod
    def index(base, idx) -> IndexAccess:
        return IndexAccess(base=_expr(base), index=_expr(idx))

    @staticmethod
    def call(func: str, *args) -> Call:
        return Call(func=func, args=[_expr(a) for a in args])

    @staticmethod
    def binop(op: str, left, right) -> BinOp:
        return BinOp(op=op, left=_expr(left), right=_expr(right))

    @staticmethod
    def add(left, right) -> BinOp:
        return E.binop("+", left, right)

    @staticmethod
    def sub(left, right) -> BinOp:
        return E.binop("-", left, right)

    @staticmethod
    def mul(left, right) -> BinOp:
        return E.binop("*", left, right)

    @staticmethod
    def div(left, right) -> BinOp:
        return E.binop("/", left, right)

    @staticmethod
    def eq(left, right) -> BinOp:
        return E.binop("==", left, right)

    @staticmethod
    def ne(left, right) -> BinOp:
        return E.binop("<>", left, right)

    @staticmethod
    def lt(left, right) -> BinOp:
        return E.binop("<", left, right)

    @staticmethod
    def le(left, right) -> BinOp:
        return E.binop("<=", left, right)

    @staticmethod
    def not_(operand) -> UnaryOp:
        return UnaryOp(op="not", operand=_expr(operand))

    @staticmethod
    def neg(operand) -> UnaryOp:
        return UnaryOp(op="-", operand=_expr(operand))


class S:
    """Statement constructors (static helpers)."""

    @staticmethod
    def var(name: str, init=None) -> VarDecl:
        return VarDecl(name=name, init=_expr(init) if init is not None else None)

    @staticmethod
    def assign(target: str, value) -> Assign:
        return Assign(target=target, value=_expr(value))

    @staticmethod
    def store(base, field_name: str, value, index=None) -> FieldAssign:
        return FieldAssign(
            base=_expr(base),
            field=field_name,
            value=_expr(value),
            index=_expr(index) if index is not None else None,
        )

    @staticmethod
    def expr(expression) -> ExprStmt:
        return ExprStmt(expr=_expr(expression))

    @staticmethod
    def call(func: str, *args) -> ExprStmt:
        return ExprStmt(expr=E.call(func, *args))

    @staticmethod
    def ret(value=None) -> Return:
        return Return(value=_expr(value) if value is not None else None)

    @staticmethod
    def block(*stmts: Stmt) -> Block:
        return Block(statements=list(stmts))

    @staticmethod
    def if_(cond, then: Sequence[Stmt], else_: Sequence[Stmt] | None = None) -> If:
        return If(
            cond=_expr(cond),
            then_body=Block(statements=list(then)),
            else_body=Block(statements=list(else_)) if else_ is not None else None,
        )

    @staticmethod
    def while_(cond, body: Sequence[Stmt]) -> While:
        return While(cond=_expr(cond), body=Block(statements=list(body)))

    @staticmethod
    def for_(var: str, lo, hi, body: Sequence[Stmt], step=None) -> For:
        return For(
            var=var,
            lo=_expr(lo),
            hi=_expr(hi),
            body=Block(statements=list(body)),
            step=_expr(step) if step is not None else None,
        )

    @staticmethod
    def parallel_for(var: str, lo, hi, body: Sequence[Stmt]) -> ParallelFor:
        return ParallelFor(var=var, lo=_expr(lo), hi=_expr(hi), body=Block(statements=list(body)))


class ProgramBuilder:
    """Accumulate type and function declarations into a :class:`Program`."""

    def __init__(self):
        self.program = Program()

    # -- types --------------------------------------------------------------
    def type(
        self,
        name: str,
        dimensions: Sequence[str] = (),
        independences: Sequence[tuple[str, str]] = (),
    ) -> "TypeBuilder":
        decl = TypeDecl(
            name=name,
            dimensions=list(dimensions),
            independences=list(independences),
        )
        self.program.types.append(decl)
        return TypeBuilder(decl)

    # -- functions ----------------------------------------------------------
    def function(
        self, name: str, params: Sequence[str] = (), body: Sequence[Stmt] = ()
    ) -> FunctionDecl:
        func = FunctionDecl(
            name=name,
            params=[Param(name=p) for p in params],
            body=Block(statements=list(body)),
        )
        self.program.functions.append(func)
        return func

    def procedure(
        self, name: str, params: Sequence[str] = (), body: Sequence[Stmt] = ()
    ) -> FunctionDecl:
        func = self.function(name, params, body)
        func.is_procedure = True
        return func

    def build(self) -> Program:
        return self.program


class TypeBuilder:
    """Fluent helper for adding fields to a type declaration."""

    def __init__(self, decl: TypeDecl):
        self.decl = decl
        self._group = 0

    def data(self, name: str, type_name: str = "int") -> "TypeBuilder":
        self.decl.fields.append(FieldDecl(name=name, type_name=type_name, is_pointer=False))
        return self

    def pointer(
        self,
        name: str,
        type_name: str | None = None,
        dimension: str | None = None,
        direction: str = "unknown",
        unique: bool = False,
        array_size: int | None = None,
        group: int | None = None,
    ) -> "TypeBuilder":
        adds = None
        if dimension is not None:
            adds = AddsFieldSpec(dimension=dimension, direction=direction, unique=unique)
        self.decl.fields.append(
            FieldDecl(
                name=name,
                type_name=type_name or self.decl.name,
                is_pointer=True,
                array_size=array_size,
                adds=adds,
                group=group,
            )
        )
        return self

    def pointer_group(
        self,
        names: Sequence[str],
        type_name: str | None = None,
        dimension: str | None = None,
        direction: str = "forward",
        unique: bool = True,
    ) -> "TypeBuilder":
        """Declare several pointer fields together (shared ADDS spec + group)."""
        self._group += 1
        for n in names:
            self.pointer(
                n,
                type_name=type_name,
                dimension=dimension,
                direction=direction,
                unique=unique,
                group=self._group,
            )
        return self

    def done(self) -> TypeDecl:
        return self.decl
