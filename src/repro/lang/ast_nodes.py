"""Abstract syntax tree for the toy pointer language.

Nodes are plain dataclasses.  Every node carries an optional source line so
that analysis results (e.g. "the abstraction is broken at line 12") can be
reported against the original program text.

The AST intentionally mirrors the statement forms the paper's pointer rules
distinguish (section 3.3):

* ``p = q``                    — :class:`Assign` with a :class:`Name` rhs
* ``p = q->f``                 — :class:`Assign` with a :class:`FieldAccess` rhs
* ``p->f = q``                 — :class:`FieldAssign`
* ``p = new T`` / ``p = NULL`` — :class:`Assign` with :class:`New` / :class:`NullLit`
* traversal loops, conditionals, calls, returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Union


# ---------------------------------------------------------------------------
# base classes
# ---------------------------------------------------------------------------
@dataclass
class Node:
    """Common base for all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield directly contained AST nodes (used by generic walkers)."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree including ``self``."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class Stmt(Node):
    """Base class for statements."""


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
@dataclass
class Name(Expr):
    """A reference to a variable or parameter."""

    ident: str
    line: int | None = None

    def __str__(self) -> str:
        return self.ident


@dataclass
class IntLit(Expr):
    value: int
    line: int | None = None

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class FloatLit(Expr):
    value: float
    line: int | None = None

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class BoolLit(Expr):
    value: bool
    line: int | None = None

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass
class StringLit(Expr):
    value: str
    line: int | None = None

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass
class NullLit(Expr):
    """The ``NULL`` pointer literal."""

    line: int | None = None

    def __str__(self) -> str:
        return "NULL"


@dataclass
class FieldAccess(Expr):
    """``base->field`` (pointer dereference followed by field selection)."""

    base: Expr
    field: str
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.base

    def __str__(self) -> str:
        return f"{self.base}->{self.field}"


@dataclass
class IndexAccess(Expr):
    """``base[index]`` — used for the octree's ``subtrees[8]`` field arrays."""

    base: Expr
    index: Expr
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.base
        yield self.index

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


@dataclass
class BinOp(Expr):
    """Binary operation: arithmetic, comparison, or boolean connective."""

    op: str
    left: Expr
    right: Expr
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnaryOp(Expr):
    op: str
    operand: Expr
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.operand

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass
class Call(Expr):
    """A function or procedure call (also usable as a statement)."""

    func: str
    args: list[Expr] = field(default_factory=list)
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield from self.args

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


@dataclass
class New(Expr):
    """``new T`` — allocate a fresh record of type ``T`` on the heap."""

    type_name: str
    line: int | None = None

    def __str__(self) -> str:
        return f"new {self.type_name}"


@dataclass
class ArrayLit(Expr):
    """A literal list of expressions, ``[e1, e2, ...]``."""

    elements: list[Expr] = field(default_factory=list)
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield from self.elements

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.elements) + "]"


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
@dataclass
class VarDecl(Stmt):
    """``var x;`` or ``var x = expr;`` — declare a local variable."""

    name: str
    type_name: str | None = None
    init: Expr | None = None
    line: int | None = None

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init


@dataclass
class Assign(Stmt):
    """``target = value;`` where target is a plain variable."""

    target: str
    value: Expr
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.value


@dataclass
class FieldAssign(Stmt):
    """``base->field = value;`` or ``base->field[index] = value;``.

    This is the statement form the paper singles out as potentially changing
    a data structure's shape (section 3.3.1).
    """

    base: Expr
    field: str
    value: Expr
    index: Expr | None = None
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.base
        if self.index is not None:
            yield self.index
        yield self.value


@dataclass
class Block(Stmt):
    """A ``{ ... }`` sequence of statements."""

    statements: list[Stmt] = field(default_factory=list)
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield from self.statements

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


@dataclass
class If(Stmt):
    cond: Expr
    then_body: Block
    else_body: Block | None = None
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then_body
        if self.else_body is not None:
            yield self.else_body


@dataclass
class While(Stmt):
    cond: Expr
    body: Block
    line: int | None = None
    label: str | None = None

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


@dataclass
class For(Stmt):
    """``for i = lo to hi [step s] { ... }`` — counted loop."""

    var: str
    lo: Expr
    hi: Expr
    body: Block
    step: Expr | None = None
    line: int | None = None
    label: str | None = None

    def children(self) -> Iterator[Node]:
        yield self.lo
        yield self.hi
        if self.step is not None:
            yield self.step
        yield self.body


@dataclass
class ParallelFor(Stmt):
    """``for i = lo to hi [step s] in parallel { ... }`` — a doall loop.

    The strip-mining transformation of section 4.3.3 emits this construct;
    the interpreter executes it either sequentially (reference semantics) or
    via the simulated multiprocessor.
    """

    var: str
    lo: Expr
    hi: Expr
    body: Block
    step: Expr | None = None
    line: int | None = None
    label: str | None = None

    def children(self) -> Iterator[Node]:
        yield self.lo
        yield self.hi
        if self.step is not None:
            yield self.step
        yield self.body


@dataclass
class Return(Stmt):
    value: Expr | None = None
    line: int | None = None

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (typically a call)."""

    expr: Expr
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield self.expr


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------
@dataclass
class AddsFieldSpec:
    """ADDS annotation attached to a pointer field declaration.

    ``direction`` is one of ``"forward"``, ``"backward"``, ``"unknown"``;
    ``unique`` records the ``uniquely`` qualifier; ``dimension`` names the
    ADDS dimension the field traverses.
    """

    dimension: str
    direction: str = "unknown"
    unique: bool = False

    def __str__(self) -> str:
        uniq = "uniquely " if self.unique else ""
        return f"is {uniq}{self.direction} along {self.dimension}"


@dataclass
class FieldDecl(Node):
    """One field of a record type declaration.

    Several names may share a declaration (``Octree *left, *right is ...``);
    the parser expands them into one :class:`FieldDecl` per name but keeps a
    shared ``group`` identifier so the ADDS layer can recover the "listed
    together" disjointness hint from section 3.1.3.
    """

    name: str
    type_name: str
    is_pointer: bool = False
    array_size: int | None = None
    adds: AddsFieldSpec | None = None
    group: int | None = None
    line: int | None = None


@dataclass
class TypeDecl(Node):
    """A record type declaration, optionally carrying ADDS dimensions.

    ``dimensions`` lists the declared ADDS dimension names (empty for plain
    records); ``independences`` lists pairs of dimension names declared
    independent via the ``where A||B`` clause.
    """

    name: str
    fields: list[FieldDecl] = field(default_factory=list)
    dimensions: list[str] = field(default_factory=list)
    independences: list[tuple[str, str]] = field(default_factory=list)
    line: int | None = None

    def field_named(self, name: str) -> FieldDecl | None:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def pointer_fields(self) -> list[FieldDecl]:
        return [f for f in self.fields if f.is_pointer]

    def recursive_pointer_fields(self) -> list[FieldDecl]:
        return [f for f in self.fields if f.is_pointer and f.type_name == self.name]

    def children(self) -> Iterator[Node]:
        yield from self.fields


@dataclass
class Param(Node):
    """A function parameter (untyped by default; type optional)."""

    name: str
    type_name: str | None = None
    line: int | None = None


@dataclass
class FunctionDecl(Node):
    """A function or procedure definition."""

    name: str
    params: list[Param] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    is_procedure: bool = False
    return_type: str | None = None
    line: int | None = None

    def children(self) -> Iterator[Node]:
        yield from self.params
        yield self.body


@dataclass
class Program(Node):
    """A whole translation unit: type declarations plus functions."""

    types: list[TypeDecl] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.types
        yield from self.functions

    def type_named(self, name: str) -> TypeDecl | None:
        for t in self.types:
            if t.name == name:
                return t
        return None

    def function_named(self, name: str) -> FunctionDecl | None:
        for f in self.functions:
            if f.name == name:
                return f
        return None


# ---------------------------------------------------------------------------
# helpers used across the analysis code
# ---------------------------------------------------------------------------
LValue = Union[Name, FieldAccess, IndexAccess]


def is_pointer_copy(stmt: Stmt) -> bool:
    """True for statements of the form ``p = q``."""
    return isinstance(stmt, Assign) and isinstance(stmt.value, Name)


def is_field_load(stmt: Stmt) -> bool:
    """True for statements of the form ``p = q->f`` (possibly indexed)."""
    return isinstance(stmt, Assign) and isinstance(stmt.value, (FieldAccess, IndexAccess))


def is_null_assign(stmt: Stmt) -> bool:
    """True for ``p = NULL``."""
    return isinstance(stmt, Assign) and isinstance(stmt.value, NullLit)


def is_allocation(stmt: Stmt) -> bool:
    """True for ``p = new T``."""
    return isinstance(stmt, Assign) and isinstance(stmt.value, New)


def iter_statements(block: Block) -> Iterator[Stmt]:
    """Yield every statement nested anywhere inside ``block`` (pre-order)."""
    for stmt in block.statements:
        yield stmt
        if isinstance(stmt, Block):
            yield from iter_statements(stmt)
        elif isinstance(stmt, If):
            yield from iter_statements(stmt.then_body)
            if stmt.else_body is not None:
                yield from iter_statements(stmt.else_body)
        elif isinstance(stmt, (While, For, ParallelFor)):
            yield from iter_statements(stmt.body)


def collect_pointer_variables(func: FunctionDecl, program: Program) -> set[str]:
    """Heuristically collect names used as pointers inside ``func``.

    A variable counts as a pointer if it is dereferenced (``v->f``), assigned
    NULL, assigned an allocation, assigned from another pointer expression,
    or passed where a record is built.  The analysis layers refine this with
    the type checker's results when available.
    """
    pointers: set[str] = set()
    changed = True
    while changed:
        changed = False
        for stmt in iter_statements(func.body):
            for node in stmt.walk():
                if isinstance(node, FieldAccess) and isinstance(node.base, Name):
                    if node.base.ident not in pointers:
                        pointers.add(node.base.ident)
                        changed = True
            if isinstance(stmt, Assign):
                if isinstance(stmt.value, (NullLit, New)):
                    if stmt.target not in pointers:
                        pointers.add(stmt.target)
                        changed = True
                elif isinstance(stmt.value, (FieldAccess, IndexAccess)):
                    if stmt.target not in pointers:
                        pointers.add(stmt.target)
                        changed = True
                elif isinstance(stmt.value, Name) and stmt.value.ident in pointers:
                    if stmt.target not in pointers:
                        pointers.add(stmt.target)
                        changed = True
    return pointers
