"""Exception hierarchy for the toy language front end and interpreter."""

from __future__ import annotations


class LangError(Exception):
    """Base class for every error raised by :mod:`repro.lang`."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.message = message
        self.line = line
        self.col = col
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line is not None and self.col is not None:
            return f"{self.message} (line {self.line}, col {self.col})"
        if self.line is not None:
            return f"{self.message} (line {self.line})"
        return self.message


class LexError(LangError):
    """Raised when the lexer encounters an unrecognized character sequence."""


class ParseError(LangError):
    """Raised when the parser cannot derive the input from the grammar."""


class TypeCheckError(LangError):
    """Raised when a program fails static type checking."""


class RuntimeLangError(LangError):
    """Raised when the interpreter detects a dynamic error.

    Examples: dereferencing ``NULL`` outside of a speculative traversal,
    accessing an undefined field, calling an undefined function.
    """


class InterpreterLimitError(RuntimeLangError):
    """Raised when interpretation exhausts a configured resource budget.

    Distinct from every other :class:`RuntimeLangError`: exceeding a step or
    call-depth budget means the program was *cut off*, not that it computed
    something wrong.  Differential testing relies on the distinction — a
    budgeted run that raises this must be classified "exhausted", never
    "diverged", and the CLI reports it as its own failure status.

    ``kind`` is ``"steps"`` or ``"depth"``.
    """

    def __init__(self, message: str, kind: str, line: int | None = None):
        self.kind = kind
        super().__init__(message, line)


class SpeculativeTraversalError(RuntimeLangError):
    """Raised when a program *uses* a value obtained by traversing past NULL.

    Section 3.2 of the paper requires ADDS structures to be *speculatively
    traversable*: following a pointer field of NULL yields NULL instead of a
    fault (analogous to computing an out-of-bounds array index without using
    it).  Using the data payload of such a node, however, is still an error,
    which this exception reports.
    """
