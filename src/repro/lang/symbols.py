"""Symbol tables and lexical scopes for the toy language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lang.errors import TypeCheckError
from repro.lang.types import Type


@dataclass
class Symbol:
    """A declared name: variable, parameter, function, or type."""

    name: str
    kind: str  # "var" | "param" | "function" | "type"
    type: Type | None = None
    line: int | None = None

    def __str__(self) -> str:
        return f"{self.kind} {self.name}: {self.type}"


class Scope:
    """A single lexical scope mapping names to symbols."""

    def __init__(self, parent: Optional["Scope"] = None, name: str = "<scope>"):
        self.parent = parent
        self.name = name
        self._symbols: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol, allow_redeclare: bool = False) -> Symbol:
        if symbol.name in self._symbols and not allow_redeclare:
            raise TypeCheckError(
                f"redeclaration of {symbol.name!r} in scope {self.name}", symbol.line
            )
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup_local(self, name: str) -> Symbol | None:
        return self._symbols.get(name)

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            sym = scope._symbols.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols.values())

    def local_names(self) -> list[str]:
        return list(self._symbols)


class SymbolTable:
    """A stack of scopes with a global scope at the bottom."""

    def __init__(self):
        self.global_scope = Scope(name="<global>")
        self._stack: list[Scope] = [self.global_scope]

    @property
    def current(self) -> Scope:
        return self._stack[-1]

    def push(self, name: str = "<scope>") -> Scope:
        scope = Scope(parent=self.current, name=name)
        self._stack.append(scope)
        return scope

    def pop(self) -> Scope:
        if len(self._stack) == 1:
            raise RuntimeError("cannot pop the global scope")
        return self._stack.pop()

    def declare(self, symbol: Symbol, **kwargs) -> Symbol:
        return self.current.declare(symbol, **kwargs)

    def declare_global(self, symbol: Symbol, **kwargs) -> Symbol:
        return self.global_scope.declare(symbol, **kwargs)

    def lookup(self, name: str) -> Symbol | None:
        return self.current.lookup(name)

    def __contains__(self, name: str) -> bool:
        return name in self.current
