"""Reference interpreter for the toy pointer language.

The interpreter serves three purposes in the reproduction:

1. **Semantics oracle** — the parallelizing transformations
   (:mod:`repro.transform`) must be semantics preserving; tests run the
   original and the transformed program on the same inputs and compare the
   resulting heaps.
2. **Dynamic ADDS checking** — the heap it builds can be validated against an
   ADDS declaration by :mod:`repro.adds.runtime_check`.
3. **Cost accounting** — it counts executed operations, which the simulated
   multiprocessor (:mod:`repro.machine`) uses as the work metric when
   replaying strip-mined schedules.

Speculative traversability (paper section 3.2) is supported: following a
*pointer field* of NULL yields NULL instead of faulting, exactly as the
transformed Barnes–Hut loops require (the ``FOR1``/``FOR2`` loops may walk
past the end of the particle list without using the result).
Reading a *data* field of NULL is still an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.lang.ast_nodes import (
    ArrayLit,
    Assign,
    BinOp,
    Block,
    BoolLit,
    Call,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldAssign,
    FloatLit,
    For,
    FunctionDecl,
    If,
    IndexAccess,
    IntLit,
    Name,
    New,
    NullLit,
    ParallelFor,
    Program,
    Return,
    Stmt,
    StringLit,
    TypeDecl,
    UnaryOp,
    VarDecl,
    While,
)
from repro.lang.errors import (
    InterpreterLimitError,
    RuntimeLangError,
    SpeculativeTraversalError,
)
from repro.lang.heap import Heap, NULL_REF
from repro.lang.types import scalar_type


def _both_ints(left: Any, right: Any) -> bool:
    """True ints on both sides (bools are their own type in the toy language)."""
    return (
        isinstance(left, int) and not isinstance(left, bool)
        and isinstance(right, int) and not isinstance(right, bool)
    )


class _ReturnSignal(Exception):
    """Internal control-flow signal used to unwind from ``return``."""

    def __init__(self, value: Any):
        self.value = value
        super().__init__()


@dataclass
class ExecutionStats:
    """Operation counts collected during interpretation."""

    statements: int = 0
    expressions: int = 0
    allocations: int = 0
    field_reads: int = 0
    field_writes: int = 0
    calls: int = 0
    loop_iterations: int = 0
    parallel_loops: int = 0

    def total_operations(self) -> int:
        return (
            self.statements
            + self.expressions
            + self.field_reads
            + self.field_writes
            + self.calls
        )

    def merge(self, other: "ExecutionStats") -> None:
        self.statements += other.statements
        self.expressions += other.expressions
        self.allocations += other.allocations
        self.field_reads += other.field_reads
        self.field_writes += other.field_writes
        self.calls += other.calls
        self.loop_iterations += other.loop_iterations
        self.parallel_loops += other.parallel_loops


@dataclass
class Frame:
    """One activation record: local variable bindings."""

    function: str
    locals: dict[str, Any] = field(default_factory=dict)

    def get(self, name: str) -> Any:
        if name not in self.locals:
            raise RuntimeLangError(f"use of undefined variable {name!r} in {self.function}")
        return self.locals[name]

    def set(self, name: str, value: Any) -> None:
        self.locals[name] = value


class Interpreter:
    """Execute programs of the toy language over an explicit heap."""

    def __init__(
        self,
        program: Program,
        speculative_traversal: bool = True,
        max_steps: int | None = None,
        max_call_depth: int | None = None,
    ):
        self.program = program
        self.heap = Heap()
        self.stats = ExecutionStats()
        self.speculative_traversal = speculative_traversal
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self._call_depth = 0
        self.builtins: dict[str, Callable[..., Any]] = {}
        self.output: list[str] = []
        self._type_decls: dict[str, TypeDecl] = {t.name: t for t in program.types}
        self._functions: dict[str, FunctionDecl] = {f.name: f for f in program.functions}
        self._parallel_executor: Optional[
            Callable[["Interpreter", ParallelFor, Frame], None]
        ] = None
        self._register_default_builtins()

    # -- configuration ----------------------------------------------------
    def register_builtin(self, name: str, func: Callable[..., Any]) -> None:
        """Expose a Python callable to interpreted code under ``name``."""
        self.builtins[name] = func

    def set_parallel_executor(
        self, executor: Callable[["Interpreter", ParallelFor, Frame], None]
    ) -> None:
        """Install a custom executor for ``ParallelFor`` loops.

        The machine simulator uses this hook to schedule iterations onto
        simulated processing elements; by default iterations run sequentially
        (which is the correct reference semantics of a doall loop whose
        iterations are independent).
        """
        self._parallel_executor = executor

    def _register_default_builtins(self) -> None:
        self.builtins["print"] = self._builtin_print
        self.builtins["abs"] = abs
        self.builtins["min"] = min
        self.builtins["max"] = max
        self.builtins["sqrt"] = lambda x: float(x) ** 0.5
        self.builtins["floor"] = lambda x: int(x // 1)
        self.builtins["float_of"] = float
        self.builtins["int_of"] = int

    def _builtin_print(self, *args: Any) -> None:
        self.output.append(" ".join(str(a) for a in args))

    # -- entry points -------------------------------------------------------
    def call_function(self, name: str, *args: Any) -> Any:
        """Call the interpreted function ``name`` with already-evaluated args."""
        func = self._functions.get(name)
        if func is None:
            builtin = self.builtins.get(name)
            if builtin is not None:
                return builtin(*args)
            raise RuntimeLangError(f"call to undefined function {name!r}")
        if len(args) != len(func.params):
            raise RuntimeLangError(
                f"{name} expects {len(func.params)} arguments, got {len(args)}"
            )
        frame = Frame(function=name)
        for param, value in zip(func.params, args):
            frame.set(param.name, value)
        self.stats.calls += 1
        if self.max_call_depth is not None and self._call_depth >= self.max_call_depth:
            raise InterpreterLimitError(
                f"call depth budget of {self.max_call_depth} exhausted "
                f"(calling {name!r})",
                kind="depth",
            )
        self._call_depth += 1
        try:
            self.execute_block(func.body, frame)
        except _ReturnSignal as ret:
            return ret.value
        except RecursionError:
            # unbounded interpreted recursion must surface as a typed,
            # catchable budget error, never as the host's RecursionError
            raise InterpreterLimitError(
                f"host recursion limit reached while calling {name!r}; "
                "set max_call_depth to budget recursion explicitly",
                kind="depth",
            ) from None
        finally:
            self._call_depth -= 1
        return None

    # -- allocation ------------------------------------------------------------
    def default_field_value(self, type_name: str, is_pointer: bool, array_size: int | None) -> Any:
        if array_size is not None:
            return [NULL_REF if is_pointer else self.default_field_value(type_name, False, None)
                    for _ in range(array_size)]
        if is_pointer:
            return NULL_REF
        scalar = scalar_type(type_name)
        if scalar is None:
            return NULL_REF
        name = str(scalar)
        if name == "int":
            return 0
        if name == "float":
            return 0.0
        if name == "bool":
            return False
        if name == "string":
            return ""
        return None

    def allocate(self, type_name: str) -> int:
        decl = self._type_decls.get(type_name)
        if decl is None:
            raise RuntimeLangError(f"allocation of unknown type {type_name!r}")
        fields = {
            f.name: self.default_field_value(f.type_name, f.is_pointer, f.array_size)
            for f in decl.fields
        }
        self.stats.allocations += 1
        return self.heap.allocate(type_name, fields)

    # -- statements ---------------------------------------------------------
    def execute_block(self, block: Block, frame: Frame) -> None:
        for stmt in block.statements:
            self.execute_statement(stmt, frame)

    def _check_step_budget(self) -> None:
        # statements + expressions together bound every loop shape: a
        # `while true { }` body executes no statements, but its condition is
        # re-evaluated every iteration and burns expression steps
        if self.stats.statements + self.stats.expressions > self.max_steps:  # type: ignore[operator]
            raise InterpreterLimitError(
                f"step budget of {self.max_steps} exhausted", kind="steps"
            )

    def execute_statement(self, stmt: Stmt, frame: Frame) -> None:
        self.stats.statements += 1
        if self.max_steps is not None:
            self._check_step_budget()
        if isinstance(stmt, VarDecl):
            value = self.evaluate(stmt.init, frame) if stmt.init is not None else NULL_REF
            frame.set(stmt.name, value)
        elif isinstance(stmt, Assign):
            frame.set(stmt.target, self.evaluate(stmt.value, frame))
        elif isinstance(stmt, FieldAssign):
            self._execute_field_assign(stmt, frame)
        elif isinstance(stmt, ExprStmt):
            self.evaluate(stmt.expr, frame)
        elif isinstance(stmt, Return):
            value = self.evaluate(stmt.value, frame) if stmt.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(stmt, Block):
            self.execute_block(stmt, frame)
        elif isinstance(stmt, If):
            if self._truthy(self.evaluate(stmt.cond, frame)):
                self.execute_block(stmt.then_body, frame)
            elif stmt.else_body is not None:
                self.execute_block(stmt.else_body, frame)
        elif isinstance(stmt, While):
            while self._truthy(self.evaluate(stmt.cond, frame)):
                self.stats.loop_iterations += 1
                self.execute_block(stmt.body, frame)
        elif isinstance(stmt, For):
            self._execute_for(stmt, frame)
        elif isinstance(stmt, ParallelFor):
            self._execute_parallel_for(stmt, frame)
        else:
            raise RuntimeLangError(f"cannot execute statement {type(stmt).__name__}")

    def _execute_field_assign(self, stmt: FieldAssign, frame: Frame) -> None:
        base = self.evaluate(stmt.base, frame)
        if base == NULL_REF:
            raise RuntimeLangError("field store through NULL pointer", stmt.line)
        value = self.evaluate(stmt.value, frame)
        self.stats.field_writes += 1
        if stmt.index is not None:
            index = self.evaluate(stmt.index, frame)
            array = self.heap.load(base, stmt.field)
            if not isinstance(array, list):
                raise RuntimeLangError(
                    f"indexed store to non-array field {stmt.field!r}", stmt.line
                )
            if not (0 <= index < len(array)):
                raise RuntimeLangError(
                    f"array index {index} out of bounds for field {stmt.field!r}", stmt.line
                )
            array[index] = value
        else:
            self.heap.store(base, stmt.field, value)

    def run_counted_loop(
        self, stmt: For | ParallelFor, frame: Frame, body=None
    ) -> None:
        """The shared reference semantics of both counted-loop forms.

        ``body`` replaces the plain body execution of one iteration — the
        machine simulator's parallel executor wraps it in cost measurement.
        Routing every executor through this one loop is what guarantees a
        simulated run can never diverge from the reference interpreter on
        step handling, descending bounds, or the loop-variable re-read.
        """
        if body is None:
            def body() -> None:
                self.execute_block(stmt.body, frame)
        lo = self.evaluate(stmt.lo, frame)
        hi = self.evaluate(stmt.hi, frame)
        step = self.evaluate(stmt.step, frame) if stmt.step is not None else 1
        if step == 0:
            raise RuntimeLangError("for-loop step of zero", stmt.line)
        i = lo
        while (step > 0 and i <= hi) or (step < 0 and i >= hi):
            frame.set(stmt.var, i)
            self.stats.loop_iterations += 1
            body()
            i = frame.get(stmt.var) + step

    def _execute_for(self, stmt: For, frame: Frame) -> None:
        self.run_counted_loop(stmt, frame)

    def _execute_parallel_for(self, stmt: ParallelFor, frame: Frame) -> None:
        self.stats.parallel_loops += 1
        if self._parallel_executor is not None:
            self._parallel_executor(self, stmt, frame)
            return
        # Reference semantics: a doall loop whose iterations are independent
        # computes the same result when run sequentially — with exactly the
        # ``for`` semantics (step, descending bounds, loop variable re-read
        # after the body).
        self.run_counted_loop(stmt, frame)

    # -- expressions ------------------------------------------------------------
    def evaluate(self, expr: Expr, frame: Frame) -> Any:
        self.stats.expressions += 1
        if self.max_steps is not None:
            self._check_step_budget()
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, StringLit):
            return expr.value
        if isinstance(expr, NullLit):
            return NULL_REF
        if isinstance(expr, Name):
            return frame.get(expr.ident)
        if isinstance(expr, New):
            return self.allocate(expr.type_name)
        if isinstance(expr, FieldAccess):
            return self._evaluate_field_access(expr, frame)
        if isinstance(expr, IndexAccess):
            return self._evaluate_index_access(expr, frame)
        if isinstance(expr, BinOp):
            return self._evaluate_binop(expr, frame)
        if isinstance(expr, UnaryOp):
            return self._evaluate_unaryop(expr, frame)
        if isinstance(expr, Call):
            args = [self.evaluate(a, frame) for a in expr.args]
            return self.call_function(expr.func, *args)
        if isinstance(expr, ArrayLit):
            return [self.evaluate(e, frame) for e in expr.elements]
        raise RuntimeLangError(f"cannot evaluate expression {type(expr).__name__}")

    def _field_is_pointer(self, type_name: str, field_name: str) -> bool:
        decl = self._type_decls.get(type_name)
        if decl is None:
            return False
        fdecl = decl.field_named(field_name)
        return fdecl is not None and fdecl.is_pointer

    def _evaluate_field_access(self, expr: FieldAccess, frame: Frame) -> Any:
        base = self.evaluate(expr.base, frame)
        if base == NULL_REF:
            if self.speculative_traversal:
                # Speculative traversability: a pointer-field load through
                # NULL yields NULL; any other load is still an error.
                return NULL_REF
            raise SpeculativeTraversalError(
                f"field read {expr.field!r} through NULL pointer", expr.line
            )
        self.stats.field_reads += 1
        return self.heap.load(base, expr.field)

    def _evaluate_index_access(self, expr: IndexAccess, frame: Frame) -> Any:
        base = self.evaluate(expr.base, frame)
        index = self.evaluate(expr.index, frame)
        if isinstance(base, list):
            if not (0 <= index < len(base)):
                raise RuntimeLangError(f"array index {index} out of bounds", expr.line)
            return base[index]
        if base == NULL_REF and self.speculative_traversal:
            return NULL_REF
        raise RuntimeLangError("indexing a non-array value", expr.line)

    def _evaluate_binop(self, expr: BinOp, frame: Frame) -> Any:
        op = expr.op
        if op == "and":
            return self._truthy(self.evaluate(expr.left, frame)) and self._truthy(
                self.evaluate(expr.right, frame)
            )
        if op == "or":
            return self._truthy(self.evaluate(expr.left, frame)) or self._truthy(
                self.evaluate(expr.right, frame)
            )
        left = self.evaluate(expr.left, frame)
        right = self.evaluate(expr.right, frame)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if _both_ints(left, right):
                if right == 0:
                    raise RuntimeLangError("integer division by zero", expr.line)
                # C-style: truncate toward zero (Python's // floors instead,
                # so -7 / 2 must be -3, not -4)
                return -(-left // right) if (left < 0) != (right < 0) else left // right
            if right == 0:
                raise RuntimeLangError("division by zero", expr.line)
            return left / right
        if op == "%":
            if right == 0:
                raise RuntimeLangError("modulo by zero", expr.line)
            if _both_ints(left, right):
                # C-style remainder: sign of the dividend, consistent with
                # truncating division (l == (l / r) * r + l % r)
                rem = abs(left) % abs(right)
                return -rem if left < 0 else rem
            return left % right
        if op == "==":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise RuntimeLangError(f"unknown binary operator {op!r}", expr.line)

    def _evaluate_unaryop(self, expr: UnaryOp, frame: Frame) -> Any:
        value = self.evaluate(expr.operand, frame)
        if expr.op == "-":
            return -value
        if expr.op == "not":
            return not self._truthy(value)
        raise RuntimeLangError(f"unknown unary operator {expr.op!r}", expr.line)

    @staticmethod
    def _truthy(value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if value is None:
            return False
        if isinstance(value, (int, float)):
            return value != 0
        return bool(value)


def run_program(
    program: Program,
    entry: str = "main",
    args: tuple[Any, ...] = (),
    speculative_traversal: bool = True,
    builtins: dict[str, Callable[..., Any]] | None = None,
    max_steps: int | None = None,
    max_call_depth: int | None = None,
) -> tuple[Any, Interpreter]:
    """Convenience wrapper: interpret ``entry`` and return (result, interpreter)."""
    interp = Interpreter(
        program,
        speculative_traversal=speculative_traversal,
        max_steps=max_steps,
        max_call_depth=max_call_depth,
    )
    if builtins:
        for name, func in builtins.items():
            interp.register_builtin(name, func)
    result = interp.call_function(entry, *args)
    return result, interp
